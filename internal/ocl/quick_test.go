package ocl

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestQuickIntArithmetic cross-checks the evaluator's integer arithmetic
// against Go's on random operands.
func TestQuickIntArithmetic(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		src := fmt.Sprintf("(%d) + (%d)", x, y)
		v, err := EvalString(src, &Env{})
		if err != nil || v != x+y {
			return false
		}
		src = fmt.Sprintf("(%d) * (%d)", x, y)
		v, err = EvalString(src, &Env{})
		if err != nil || v != x*y {
			return false
		}
		src = fmt.Sprintf("(%d) < (%d)", x, y)
		v, err = EvalString(src, &Env{})
		return err == nil && v == (x < y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBooleanLaws checks implies/xor against their definitions.
func TestQuickBooleanLaws(t *testing.T) {
	f := func(p, q bool) bool {
		env := &Env{Vars: map[string]any{"p": p, "q": q}}
		imp, err := EvalString("p implies q", env)
		if err != nil || imp != (!p || q) {
			return false
		}
		x, err := EvalString("p xor q", env)
		if err != nil || x != (p != q) {
			return false
		}
		dm, err := EvalString("not (p and q) = (not p or not q)", env)
		return err == nil && dm == true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelectRejectPartition checks that select and reject partition a
// collection: their sizes always sum to the collection size.
func TestQuickSelectRejectPartition(t *testing.T) {
	f := func(xs []int8, pivot int8) bool {
		items := make([]any, len(xs))
		for i, x := range xs {
			items[i] = int64(x)
		}
		env := &Env{Vars: map[string]any{"xs": items, "p": int64(pivot)}}
		v, err := EvalString("xs->select(x | x < p)->size() + xs->reject(x | x < p)->size()", env)
		return err == nil && v == int64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickForAllExistsDuality checks not forAll(p) = exists(not p).
func TestQuickForAllExistsDuality(t *testing.T) {
	f := func(xs []int8, pivot int8) bool {
		items := make([]any, len(xs))
		for i, x := range xs {
			items[i] = int64(x)
		}
		env := &Env{Vars: map[string]any{"xs": items, "p": int64(pivot)}}
		v, err := EvalString("(not xs->forAll(x | x < p)) = xs->exists(x | not (x < p))", env)
		return err == nil && v == true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAsSetIdempotent checks that asSet is idempotent and never grows.
func TestQuickAsSetIdempotent(t *testing.T) {
	f := func(xs []uint8) bool {
		items := make([]any, len(xs))
		for i, x := range xs {
			items[i] = int64(x % 8) // force duplicates
		}
		env := &Env{Vars: map[string]any{"xs": items}}
		once, err := EvalString("xs->asSet()->size()", env)
		if err != nil {
			return false
		}
		twice, err := EvalString("xs->asSet()->asSet()->size()", env)
		if err != nil {
			return false
		}
		return once == twice && once.(int64) <= int64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStringLiteralRoundTrip checks that arbitrary strings survive
// quoting, lexing and evaluation.
func TestQuickStringLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Build a literal with '' escaping.
		quoted := "'"
		for _, r := range s {
			if r == '\'' {
				quoted += "''"
			} else {
				quoted += string(r)
			}
		}
		quoted += "'"
		v, err := EvalString(quoted, &Env{})
		return err == nil && v == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSortedByIsSorted checks that sortedBy yields a non-decreasing
// key sequence of the same length.
func TestQuickSortedByIsSorted(t *testing.T) {
	f := func(xs []int8) bool {
		items := make([]any, len(xs))
		for i, x := range xs {
			items[i] = int64(x)
		}
		env := &Env{Vars: map[string]any{"xs": items}}
		v, err := EvalString("xs->sortedBy(x | x)", env)
		if err != nil {
			return false
		}
		out := v.([]any)
		if len(out) != len(xs) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1].(int64) > out[i].(int64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
