package ocl

import "strconv"

// parser is a recursive-descent parser over the token stream. Precedence,
// lowest first: implies; xor; or; and; comparison; additive; multiplicative;
// unary; postfix (dot navigation, dot call, arrow call, ::).
type parser struct {
	src  string
	toks []token
	i    int
}

// Parse parses one OCL expression.
func Parse(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, errAt(src, p.cur().pos, "unexpected %s after expression", p.cur())
	}
	return e, nil
}

// MustParse is Parse that panics on error, for statically known expressions
// such as the built-in profile constraints.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, errAt(p.src, p.cur().pos, "expected %s, found %s", what, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) parseImplies() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokKwImpl {
		op := p.advance()
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "implies", L: l, R: r, pos: op.pos}
	}
	return l, nil
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokKwXor {
		op := p.advance()
		r, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "xor", L: l, R: r, pos: op.pos}
	}
	return l, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokKwOr {
		op := p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r, pos: op.pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokKwAnd {
		op := p.advance()
		r, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r, pos: op.pos}
	}
	return l, nil
}

func (p *parser) parseCompare() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokEq:
			op = "="
		case tokNe:
			op = "<>"
		case tokLt:
			op = "<"
		case tokLe:
			op = "<="
		case tokGt:
			op = ">"
		case tokGe:
			op = ">="
		default:
			return l, nil
		}
		t := p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, pos: t.pos}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return l, nil
		}
		t := p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, pos: t.pos}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		case tokKwMod:
			op = "mod"
		case tokKwDiv:
			op = "div"
		default:
			return l, nil
		}
		t := p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, pos: t.pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().kind {
	case tokKwNot:
		t := p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "not", E: e, pos: t.pos}, nil
	case tokMinus:
		t := p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", E: e, pos: t.pos}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokDot:
			p.advance()
			name, err := p.expect(tokIdent, "property or operation name")
			if err != nil {
				return nil, err
			}
			if p.cur().kind == tokLParen {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				e = &CallExpr{Recv: e, Name: name.text, Args: args, pos: name.pos}
			} else {
				e = &NavExpr{Recv: e, Name: name.text, pos: name.pos}
			}
		case tokArrow:
			p.advance()
			name, err := p.expect(tokIdent, "collection operation name")
			if err != nil {
				return nil, err
			}
			arrow, err := p.parseArrowCall(e, name)
			if err != nil {
				return nil, err
			}
			e = arrow
		case tokDColon:
			// Enum literal: only valid when the receiver is a bare name.
			v, ok := e.(*VarExpr)
			if !ok {
				return nil, errAt(p.src, p.cur().pos, ":: requires an enumeration name on the left")
			}
			p.advance()
			lit, err := p.expect(tokIdent, "enumeration literal")
			if err != nil {
				return nil, err
			}
			e = &EnumExpr{Enum: v.Name, Literal: lit.text, pos: v.pos}
		default:
			return e, nil
		}
	}
}

// iteratorOps are arrow operations whose single argument is `iter | body`
// (or a bare body with an implicit iterator).
var iteratorOps = map[string]bool{
	"select": true, "reject": true, "collect": true,
	"forAll": true, "exists": true, "any": true, "one": true,
	"sortedBy": true, "isUnique": true,
}

func (p *parser) parseArrowCall(recv Expr, name token) (Expr, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	if iteratorOps[name.text] {
		// Either "x | body" or a bare "body" with implicit iterator.
		iter := ""
		if p.cur().kind == tokIdent && p.peek().kind == tokBar {
			iter = p.advance().text
			p.advance() // |
		}
		body, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return &ArrowExpr{Recv: recv, Name: name.text, Iter: iter, Body: body, pos: name.pos}, nil
	}
	var args []Expr
	if p.cur().kind != tokRParen {
		for {
			a, err := p.parseImplies()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return &ArrowExpr{Recv: recv, Name: name.text, Args: args, pos: name.pos}, nil
}

func (p *parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []Expr
	if p.cur().kind != tokRParen {
		for {
			a, err := p.parseImplies()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Hand-rolled accumulation would silently wrap here; an
			// out-of-range literal is a parse error, not MinInt64.
			return nil, errAt(p.src, t.pos, "integer literal %q out of range", t.text)
		}
		return &LitExpr{Val: v, pos: t.pos}, nil
	case tokReal:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(p.src, t.pos, "bad real literal %q", t.text)
		}
		return &LitExpr{Val: f, pos: t.pos}, nil
	case tokString:
		p.advance()
		return &LitExpr{Val: t.text, pos: t.pos}, nil
	case tokKwTrue:
		p.advance()
		return &LitExpr{Val: true, pos: t.pos}, nil
	case tokKwFalse:
		p.advance()
		return &LitExpr{Val: false, pos: t.pos}, nil
	case tokKwNull:
		p.advance()
		return &LitExpr{Val: nil, pos: t.pos}, nil
	case tokKwSelf:
		p.advance()
		return &VarExpr{Name: "self", pos: t.pos}, nil
	case tokIdent:
		// Collection literals: Set{...}, Sequence{...}, Bag{...}.
		if (t.text == "Set" || t.text == "Sequence" || t.text == "Bag") && p.peek().kind == tokLBrace {
			p.advance() // ident
			p.advance() // {
			var items []Expr
			if p.cur().kind != tokRBrace {
				for {
					e, err := p.parseImplies()
					if err != nil {
						return nil, err
					}
					items = append(items, e)
					if p.cur().kind != tokComma {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(tokRBrace, "'}'"); err != nil {
				return nil, err
			}
			return &CollectionExpr{Kind: t.text, Items: items, pos: t.pos}, nil
		}
		p.advance()
		return &VarExpr{Name: t.text, pos: t.pos}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokKwIf:
		p.advance()
		cond, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKwThen, "'then'"); err != nil {
			return nil, err
		}
		then, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKwElse, "'else'"); err != nil {
			return nil, err
		}
		els, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKwEndif, "'endif'"); err != nil {
			return nil, err
		}
		return &IfExpr{Cond: cond, Then: then, Else: els, pos: t.pos}, nil
	case tokKwLet:
		p.advance()
		name, err := p.expect(tokIdent, "variable name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq, "'='"); err != nil {
			return nil, err
		}
		init, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKwIn, "'in'"); err != nil {
			return nil, err
		}
		body, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		return &LetExpr{Name: name.text, Init: init, Body: body, pos: t.pos}, nil
	default:
		return nil, errAt(p.src, t.pos, "unexpected %s", t)
	}
}
