// Differential harness: the tree-walking interpreter is the oracle and
// compiled Programs must agree with it — same value or same error — on
// every checked-in fuzz corpus entry, a table of handwritten expressions
// and randomized testing/quick inputs, each replayed under several
// environments (no bindings, scalar bindings, a full model).
package ocl

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// diffEnv pairs an environment with the options the compiler needs to see
// the same world (same metamodel, same declared variables).
type diffEnv struct {
	name string
	env  *Env
}

func (d diffEnv) compileOptions() CompileOptions {
	vars := make([]string, 0, len(d.env.Vars))
	for k := range d.env.Vars {
		vars = append(vars, k)
	}
	sort.Strings(vars)
	return CompileOptions{Meta: d.env.meta(), Vars: vars}
}

func differentialEnvs(t testing.TB) []diffEnv {
	_, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)
	return []diffEnv{
		{name: "empty", env: &Env{}},
		{name: "scalars", env: &Env{Vars: map[string]any{
			"p":  true,
			"q":  false,
			"x":  int64(3),
			"y":  int64(-7),
			"r":  2.5,
			"s":  "abc",
			"xs": []any{int64(1), int64(2), int64(3)},
			"a":  int64(1),
		}}},
		{name: "model", env: &Env{
			Model: m,
			Vars:  map[string]any{"self": b1},
		}},
	}
}

// assertAgreement runs one expression through both evaluation paths under
// one environment and fails on any observable difference.
func assertAgreement(t *testing.T, expr Expr, d diffEnv) {
	t.Helper()
	iv, ierr := Eval(expr, d.env)
	prog, cerr := CompileWith(expr, d.compileOptions())
	if cerr != nil {
		t.Fatalf("env %s: Compile(%q) failed: %v", d.name, expr, cerr)
	}
	cv, rerr := prog.Eval(d.env)
	if (ierr != nil) != (rerr != nil) {
		t.Fatalf("env %s: %q\ninterpreted: v=%#v err=%v\ncompiled:    v=%#v err=%v",
			d.name, expr, iv, ierr, cv, rerr)
	}
	if ierr != nil {
		if ierr.Error() != rerr.Error() {
			t.Fatalf("env %s: %q error text diverged\ninterpreted: %v\ncompiled:    %v",
				d.name, expr, ierr, rerr)
		}
		return
	}
	if !reflect.DeepEqual(iv, cv) {
		t.Fatalf("env %s: %q value diverged\ninterpreted: %#v\ncompiled:    %#v",
			d.name, expr, iv, cv)
	}
}

// corpusInputs loads every FuzzParse corpus entry (go fuzz v1 format).
func corpusInputs(t testing.TB) []string {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzParse")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	var out []string
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading corpus entry %s: %v", e.Name(), err)
		}
		lines := strings.Split(string(data), "\n")
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("corpus entry %s: unexpected format", e.Name())
		}
		payload := strings.TrimSuffix(strings.TrimPrefix(lines[1], "string("), ")")
		src, err := strconv.Unquote(payload)
		if err != nil {
			t.Fatalf("corpus entry %s: unquote: %v", e.Name(), err)
		}
		out = append(out, src)
	}
	if len(out) == 0 {
		t.Fatal("fuzz corpus is empty — differential replay would prove nothing")
	}
	return out
}

// TestDifferentialCorpus replays the full checked-in fuzz corpus plus the
// fuzz seeds through interpreter and compiler under every environment.
func TestDifferentialCorpus(t *testing.T) {
	envs := differentialEnvs(t)
	inputs := append(corpusInputs(t), fuzzSeeds...)
	parsed := 0
	for _, src := range inputs {
		expr, err := Parse(src)
		if err != nil {
			continue // unparseable corpus entries exercise the lexer only
		}
		parsed++
		for _, d := range envs {
			assertAgreement(t, expr, d)
		}
	}
	if parsed == 0 {
		t.Fatal("no corpus entry parsed — harness is vacuous")
	}
	t.Logf("replayed %d parseable inputs across %d environments", parsed, len(envs))
}

// differentialExprs are handwritten expressions targeting every compiler
// code path: folding, short-circuit specialization, slots and shadowing,
// implicit iterators, type resolution, frame reuse.
var differentialExprs = []string{
	// constant folding and const-error deferral
	"1 + 2 * 3",
	"false and (1 / 0) > 0",
	"true and (1 / 0) > 0",
	"true or (1 / 0) > 0",
	"false implies (1 / 0) > 0",
	"1 / 0",
	"5 mod 0",
	"7 div 0",
	"if 1 < 2 then 'yes' else 'no' endif",
	"if 1 then 2 else 3 endif",
	"'ab'.concat('cd').size()",
	"'hello'.substring(2, 4)",
	"'hello'.substring(0, 99)",
	"(-5).abs()",
	"(3).max(9) + (3).min(9)",
	"null.oclIsUndefined()",
	"let k = 2 in k * k",
	"let k = 1 / 0 in 5",
	// variables, shadowing, let over iterators
	"x + y",
	"p and q",
	"p or q",
	"p xor q",
	"p implies q",
	"not p",
	"let x = 100 in x + 1",
	"xs->select(x | x > 1)->size()",
	"xs->forAll(x | xs->exists(x | x = 1))",
	"xs->collect(v | v * v)->sum()",
	"let v = 10 in xs->collect(x | x + v)",
	"xs->sortedBy(x | -x)",
	"xs->isUnique(x | x mod 2)",
	"xs->any(x | x > 2)",
	// implicit iterators and the self alias
	"Sequence{1, 2, 3}->select(s | s > 1)",
	"Sequence{1, 2, 3}->collect(self)",
	"Sequence{Sequence{1}, Sequence{2}}->collect(self->size())",
	"xs->exists(self = 2)",
	// collections
	"Set{1, 2, 2, 3}->size()",
	"Set{}->isEmpty()",
	"Sequence{3, 1, 2}->sortedBy(x | x)->first()",
	"Bag{1, 1}->asSet()",
	"xs->including(9)->excluding(1)",
	"xs->union(Sequence{4})->reverse()",
	"xs->at(2) + xs->indexOf(3)",
	"xs->count(2) = 1",
	"xs->includesAll(Sequence{1, 3})",
	"Sequence{1, 'a'}->max()",
	"xs->avg()",
	"Sequence{}->first().oclIsUndefined()",
	// errors that must match exactly
	"unknownIdent",
	"unknownIdent + 1",
	"'a' + 1",
	"xs->forAll(x | x)",
	"s.bogusOp()",
	"xs->bogusCollOp()",
	"Genre::Missing",
	"Missing::Literal",
	"1.5 mod 2.5",
	// model-dependent paths (resolve to errors in scalar/empty envs —
	// those error texts must also match)
	"self.title.size() > 0",
	"self.pages > 100 and self.pages < 10000",
	"Book.allInstances()->size()",
	"Book.allInstances()->forAll(b | b.pages > 0)",
	"Novel.allInstances()->forAll(n | n.oclIsKindOf(Book))",
	"self.oclIsTypeOf(Book)",
	"self.oclIsKindOf(NoSuchType)",
	"self.oclAsType(Novel).oclIsUndefined()",
	"self.genre = Genre::Fiction",
	"self.authors->collect(a | a.name)->notEmpty()",
	"self.authors.name->size()",
}

func TestDifferentialHandwritten(t *testing.T) {
	envs := differentialEnvs(t)
	for _, src := range differentialExprs {
		expr, err := Parse(src)
		if err != nil {
			t.Fatalf("table entry %q does not parse: %v", src, err)
		}
		for _, d := range envs {
			assertAgreement(t, expr, d)
		}
	}
}

// TestDifferentialQuick drives randomized scalar environments through a
// fixed expression set, quick-check style: for arbitrary variable values
// the two evaluation paths must agree.
func TestDifferentialQuick(t *testing.T) {
	exprs := make([]Expr, 0, len(differentialExprs))
	for _, src := range differentialExprs {
		exprs = append(exprs, MustParse(src))
	}
	property := func(p, q bool, x, y int8, r float64, s string, raw []int8) bool {
		xs := make([]any, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		d := diffEnv{name: "quick", env: &Env{Vars: map[string]any{
			"p": p, "q": q,
			"x": int64(x), "y": int64(y),
			"r": r, "s": s, "xs": xs,
			"a": int64(1),
		}}}
		for _, expr := range exprs {
			iv, ierr := Eval(expr, d.env)
			prog, cerr := CompileWith(expr, d.compileOptions())
			if cerr != nil {
				t.Logf("compile %q: %v", expr, cerr)
				return false
			}
			cv, rerr := prog.Eval(d.env)
			if (ierr != nil) != (rerr != nil) ||
				(ierr != nil && ierr.Error() != rerr.Error()) ||
				(ierr == nil && !reflect.DeepEqual(iv, cv)) {
				t.Logf("diverged on %q:\ninterpreted: v=%#v err=%v\ncompiled:    v=%#v err=%v",
					expr, iv, ierr, cv, rerr)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatalf("differential property failed: %v", err)
	}
}

// TestDifferentialProgramReuse checks that one Program evaluated many times
// over a shared Env (the production shape: compile once, evaluate per
// object on several goroutines' worth of frames) keeps agreeing with fresh
// interpreter runs — i.e. frame pooling leaks no state between calls.
func TestDifferentialProgramReuse(t *testing.T) {
	_, m := libFixture(t)
	a1, b1, b2 := seedLibrary(t, m)
	expr := MustParse("self.oclIsKindOf(Book) implies (self.pages > 0 and self.title.size() > 0)")
	prog, err := CompileWith(expr, CompileOptions{Meta: m.Metamodel(), Vars: []string{"self"}})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	shared := &Env{Model: m}
	selves := []any{a1, b1, b2, nil}
	for round := 0; round < 3; round++ {
		for _, self := range selves {
			iv, ierr := Eval(expr, &Env{Model: m, Vars: map[string]any{"self": self}})
			cv, rerr := prog.EvalSelf(self, shared)
			if (ierr != nil) != (rerr != nil) ||
				(ierr != nil && ierr.Error() != rerr.Error()) ||
				(ierr == nil && !reflect.DeepEqual(iv, cv)) {
				t.Fatalf("round %d self=%v:\ninterpreted: v=%#v err=%v\ncompiled:    v=%#v err=%v",
					round, self, iv, ierr, cv, rerr)
			}
		}
	}
}

// TestDifferentialErrorTextsStable pins a few error strings both paths must
// produce verbatim; consumer diagnostics embed them.
func TestDifferentialErrorTextsStable(t *testing.T) {
	cases := map[string]string{
		"1 / 0":        "ocl: division by zero",
		"unknownIdent": `ocl: unknown variable or type "unknownIdent"`,
		"1 and true":   `ocl: "and" needs Boolean operands, got Integer`,
	}
	for src, want := range cases {
		_, ierr := EvalString(src, &Env{})
		prog, _ := CompileWith(MustParse(src), CompileOptions{})
		_, cerr := prog.Eval(&Env{})
		if ierr == nil || ierr.Error() != want {
			t.Errorf("interpreter %q: got %v, want %s", src, ierr, want)
		}
		if cerr == nil || cerr.Error() != want {
			t.Errorf("compiled %q: got %v, want %s", src, cerr, want)
		}
	}
}
