package ocl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer turns an OCL expression string into a token stream.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// lexAll tokenizes the whole input, returning an error on the first
// unrecognized character or unterminated string.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	lx.skipSpace()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case c == '-':
		if lx.peekAt(1) == '>' {
			lx.pos += 2
			return token{kind: tokArrow, text: "->", pos: start}, nil
		}
		lx.pos++
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case c == '.':
		lx.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == ':':
		if lx.peekAt(1) == ':' {
			lx.pos += 2
			return token{kind: tokDColon, text: "::", pos: start}, nil
		}
		return token{}, errAt(lx.src, start, "unexpected ':'")
	case c == '(':
		lx.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '|':
		lx.pos++
		return token{kind: tokBar, text: "|", pos: start}, nil
	case c == ',':
		lx.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '{':
		lx.pos++
		return token{kind: tokLBrace, text: "{", pos: start}, nil
	case c == '}':
		lx.pos++
		return token{kind: tokRBrace, text: "}", pos: start}, nil
	case c == '=':
		lx.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '<':
		switch lx.peekAt(1) {
		case '>':
			lx.pos += 2
			return token{kind: tokNe, text: "<>", pos: start}, nil
		case '=':
			lx.pos += 2
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		lx.pos++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case c == '>':
		if lx.peekAt(1) == '=' {
			lx.pos += 2
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		lx.pos++
		return token{kind: tokGt, text: ">", pos: start}, nil
	case c == '+':
		lx.pos++
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case c == '*':
		lx.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '/':
		lx.pos++
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case c == '\'':
		return lx.lexString()
	case c >= '0' && c <= '9':
		return lx.lexNumber()
	default:
		r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if isIdentStart(r) {
			return lx.lexIdent()
		}
		return token{}, errAt(lx.src, start, "unexpected character %q", string(r))
	}
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		// Line comments: -- to end of line.
		if c == '-' && lx.peekAt(1) == '-' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		return
	}
}

func (lx *lexer) lexString() (token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			// '' is an escaped quote inside a string.
			if lx.peekAt(1) == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return token{}, errAt(lx.src, start, "unterminated string literal")
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.pos++
	}
	kind := tokInt
	// A real number needs a digit after the dot; "1..2" style ranges are not
	// part of this subset, so ".." never appears.
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' &&
		lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
		kind = tokReal
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	return token{kind: kind, text: lx.src[start:lx.pos], pos: start}, nil
}

func (lx *lexer) lexIdent() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, sz := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isIdentPart(r) {
			break
		}
		lx.pos += sz
	}
	text := lx.src[start:lx.pos]
	if kw, ok := keywords[text]; ok {
		return token{kind: kw, text: text, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
