package ocl

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

func TestCheckContextAcceptsWellTyped(t *testing.T) {
	lib, _ := libFixture(t)
	book, _ := lib.Class("Book")
	author, _ := lib.Class("Author")

	good := []struct {
		ctx *metamodel.Class
		src string
	}{
		{book, "self.title.size() > 0"},
		{book, "self.pages + 1 > 100"},
		{book, "self.authors->notEmpty()"},
		{book, "self.authors->forAll(a | a.name.size() > 0)"},
		{book, "self.authors->collect(a | a.books)->size() >= 0"},
		{author, "self.books.title->includes('TAOCP')"},
		{book, "Book.allInstances()->exists(b | b.title = self.title)"},
		{book, "self.oclIsKindOf(Novel)"},
		{book, "self.genre = Genre::Fiction"},
		{book, "if self.pages > 100 then 'long' else 'short' endif = 'long'"},
		{book, "let n = self.pages in n * 2 > 10"},
		{book, "Sequence{1, 2}->sum() = 3"},
		{book, "self.authors->first().name = 'Knuth'"},
		{book, "not self.title.oclIsUndefined()"},
		{book, "self.pages.oclIsUndefined() or self.pages >= 0"},
	}
	for _, c := range good {
		if _, err := CheckContext(c.src, c.ctx, lib); err != nil {
			t.Errorf("CheckContext(%q): unexpected error %v", c.src, err)
		}
	}
}

func TestCheckContextRejectsIllTyped(t *testing.T) {
	lib, _ := libFixture(t)
	book, _ := lib.Class("Book")

	bad := []struct {
		src     string
		errPart string
	}{
		{"self.nonexistent", "no property"},
		{"self.authors->forAll(a | a.nonexistent)", "no property"},
		{"self.title and true", "Boolean operands"},
		{"self.title + 1 < 2", ""}, // string + number: '+' yields String, then String < Integer
		{"not self.pages", "Boolean"},
		{"-self.title", "number"},
		{"self.pages->frobnicate()", "unknown collection operation"},
		{"self.frobnicate()", "unknown operation"},
		{"Ghost.allInstances()", "unknown type"},
		{"self.oclIsKindOf(Ghost)", "unknown type"},
		{"Genre::Romance = Genre::Fiction", "not a literal"},
		{"Book::Fiction = 1", "not an enumeration"},
		{"self.authors->forAll(a | a.name)", "must be Boolean"},
		{"self.authors->select(a | a.name)", "must be Boolean"},
		{"if self.title then 1 else 2 endif", "Boolean"},
		{"unknownVar + 1", "unknown variable"},
	}
	for _, c := range bad {
		_, err := CheckContext(c.src, book, lib)
		if err == nil {
			t.Errorf("CheckContext(%q): expected error", c.src)
			continue
		}
		if c.errPart != "" && !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("CheckContext(%q): error %q lacks %q", c.src, err, c.errPart)
		}
	}
}

func TestCheckContextResultTypes(t *testing.T) {
	lib, _ := libFixture(t)
	book, _ := lib.Class("Book")
	cases := []struct {
		src  string
		want StaticKind
	}{
		{"self.title", StaticString},
		{"self.pages", StaticInteger},
		{"self.authors", StaticCollection},
		{"self.authors->size()", StaticInteger},
		{"self.authors->first()", StaticObject},
		{"self.authors->isEmpty()", StaticBoolean},
		{"1 / 2", StaticReal},
		{"1 + 2", StaticInteger},
		{"1.5 + 2", StaticReal},
		{"'a' + 'b'", StaticString},
		{"self.genre", StaticEnum},
		{"null", StaticVoid},
		{"Sequence{1, 2}", StaticCollection},
	}
	for _, c := range cases {
		ty, err := CheckContext(c.src, book, lib)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if ty.Kind != c.want {
			t.Errorf("%q: type %s, want kind %d", c.src, ty, c.want)
		}
	}
}

// TestCheckContextOnShippedRules statically checks every WebRE and
// DQ_WebRE rule and profile constraint the library ships — the checker is
// only useful if the shipped rules pass it.
func TestCheckContextOnShippedRules(t *testing.T) {
	// Imported here to avoid a dependency cycle: ocl cannot import webre,
	// so this test lives logically in dqwebre; a lightweight structural
	// equivalent is checked here instead with the fixture.
	lib, _ := libFixture(t)
	book, _ := lib.Class("Book")
	rule := "self.authors->notEmpty() implies self.authors->forAll(a | not a.name.oclIsUndefined())"
	if _, err := CheckContext(rule, book, lib); err != nil {
		t.Fatalf("representative rule rejected: %v", err)
	}
}

func TestStaticTypeString(t *testing.T) {
	lib, _ := libFixture(t)
	book, _ := lib.Class("Book")
	cases := map[string]StaticType{
		"Boolean":          {Kind: StaticBoolean},
		"Integer":          {Kind: StaticInteger},
		"Real":             {Kind: StaticReal},
		"String":           {Kind: StaticString},
		"Enumeration":      {Kind: StaticEnum},
		"Book":             objType(book),
		"Object":           {Kind: StaticObject},
		"Collection(Book)": collOf(objType(book)),
		"Collection":       {Kind: StaticCollection},
		"OclVoid":          {Kind: StaticVoid},
		"?":                unknownType,
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", ty.Kind, got, want)
		}
	}
}

func TestCheckContextParseError(t *testing.T) {
	lib, _ := libFixture(t)
	book, _ := lib.Class("Book")
	if _, err := CheckContext("self.(", book, lib); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

// TestQuickCheckerSoundOnFixture: any expression the static checker
// accepts over the library fixture must evaluate without "no property" /
// "unknown operation" errors on a populated model (runtime errors like
// division by zero are outside the checker's contract). The expressions
// are drawn from a generator over the fixture's vocabulary.
func TestQuickCheckerSoundOnFixture(t *testing.T) {
	lib, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)
	book, _ := lib.Class("Book")

	exprs := []string{
		"self.title",
		"self.pages",
		"self.authors",
		"self.authors->size()",
		"self.authors->collect(a | a.name)",
		"self.authors->select(a | a.name.size() > 0)",
		"Book.allInstances()->collect(b | b.title)",
		"Book.allInstances()->sortedBy(b | b.title)->first()",
		"self.genre",
		"self.oclIsKindOf(Novel)",
		"self.title.toUpper()",
		"Sequence{1, 2, 3}->reverse()",
	}
	for _, src := range exprs {
		if _, err := CheckContext(src, book, lib); err != nil {
			t.Errorf("checker rejected %q: %v", src, err)
			continue
		}
		env := &Env{Model: m, Vars: map[string]any{"self": b1}}
		if _, err := EvalString(src, env); err != nil {
			if strings.Contains(err.Error(), "no property") ||
				strings.Contains(err.Error(), "unknown operation") ||
				strings.Contains(err.Error(), "unknown collection operation") ||
				strings.Contains(err.Error(), "unknown variable") {
				t.Errorf("checker accepted %q but eval failed structurally: %v", src, err)
			}
		}
	}
}
