// Differential coverage for the vectorized entry points: EvalBatch and
// EvalBoolBatch over a batch of rows must agree, row for row, with the
// per-record compiled path and the tree-walking interpreter — same values,
// same error texts — including under AssumeBound, whose conjunction
// reordering is only sound when every declared variable is bound (as the
// batch caller guarantees).
package ocl

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

// batchVars is the scalar variable set the batch differential tests bind.
var batchVars = []string{"a", "p", "q", "r", "s", "x", "xs", "y"}

// batchRow builds row i's variable values, cycling through booleans,
// signs, blanks and collection sizes so short-circuit and error paths all
// trigger somewhere in the batch.
func batchRow(i int) map[string]any {
	xs := make([]any, i%4)
	for j := range xs {
		xs[j] = int64(j + i)
	}
	s := fmt.Sprintf("s%d", i)
	if i%5 == 0 {
		s = ""
	}
	return map[string]any{
		"a":  int64(1),
		"p":  i%2 == 0,
		"q":  i%3 == 0,
		"r":  float64(i)*1.5 - 2,
		"s":  s,
		"x":  int64(i - 2),
		"xs": xs,
		"y":  int64(7 - 3*i),
	}
}

// cseBatchExprs stress the round-2 compiler passes in batch context:
// repeated subexpressions (CSE slots must reset between rows via the
// generation bump) and reorderable conjunctions.
var cseBatchExprs = []string{
	"s.size() > 1 and s.size() < 5",
	"s.size() + s.size() + s.size()",
	"xs->select(x | x > 0)->size() + xs->select(x | x > 0)->size()",
	"xs->forAll(x | s.size() >= 0 and x + s.size() > x)",
	"p and (q or p) and p",
	"(x * x + y * y) > 0 or (x * x + y * y) = 0",
	"let t = s.concat(s) in t.size() = s.size() * 2",
}

func batchDifferentialExprs(t *testing.T) []Expr {
	t.Helper()
	var out []Expr
	for _, src := range append(append([]string(nil), differentialExprs...), cseBatchExprs...) {
		expr, err := Parse(src)
		if err != nil {
			t.Fatalf("table entry %q does not parse: %v", src, err)
		}
		out = append(out, expr)
	}
	return out
}

// bindColumns builds one BoundColumn per declared variable from the rows.
func bindColumns(t *testing.T, prog *Program, rows []map[string]any) []BoundColumn {
	t.Helper()
	cols := make([]BoundColumn, 0, len(batchVars))
	for _, name := range batchVars {
		slot, ok := prog.Slot(name)
		if !ok {
			t.Fatalf("no slot for %q", name)
		}
		vals := make([]any, len(rows))
		for i, row := range rows {
			vals[i] = row[name]
		}
		cols = append(cols, BoundColumn{Slot: slot, Values: vals})
	}
	return cols
}

// TestEvalBatchDifferential pins EvalBatch against the interpreter and the
// per-record compiled path over the full handwritten expression table,
// with and without AssumeBound.
func TestEvalBatchDifferential(t *testing.T) {
	const rows = 9
	rowVals := make([]map[string]any, rows)
	for i := range rowVals {
		rowVals[i] = batchRow(i)
	}
	for _, assumeBound := range []bool{false, true} {
		for _, expr := range batchDifferentialExprs(t) {
			prog, err := CompileWith(expr, CompileOptions{Vars: batchVars, AssumeBound: assumeBound})
			if err != nil {
				t.Fatalf("compile %q: %v", expr, err)
			}
			out := make([]BatchResult, rows)
			prog.EvalBatch(nil, bindColumns(t, prog, rowVals), out)
			for i, got := range out {
				env := &Env{Vars: rowVals[i]}
				iv, ierr := Eval(expr, env)
				if (ierr != nil) != (got.Err != nil) {
					t.Fatalf("assumeBound=%v %q row %d:\ninterpreted: v=%#v err=%v\nbatch:       v=%#v err=%v",
						assumeBound, expr, i, iv, ierr, got.Val, got.Err)
				}
				if ierr != nil {
					if ierr.Error() != got.Err.Error() {
						t.Fatalf("assumeBound=%v %q row %d error text diverged\ninterpreted: %v\nbatch:       %v",
							assumeBound, expr, i, ierr, got.Err)
					}
					continue
				}
				if !reflect.DeepEqual(iv, got.Val) {
					t.Fatalf("assumeBound=%v %q row %d value diverged\ninterpreted: %#v\nbatch:       %#v",
						assumeBound, expr, i, iv, got.Val)
				}
			}
		}
	}
}

// TestEvalBatchCorpus replays every parseable fuzz corpus entry through
// EvalBatch against the per-record path.
func TestEvalBatchCorpus(t *testing.T) {
	const rows = 4
	rowVals := make([]map[string]any, rows)
	for i := range rowVals {
		rowVals[i] = batchRow(i)
	}
	parsed := 0
	for _, src := range append(corpusInputs(t), fuzzSeeds...) {
		expr, err := Parse(src)
		if err != nil {
			continue
		}
		parsed++
		prog, err := CompileWith(expr, CompileOptions{Vars: batchVars})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		out := make([]BatchResult, rows)
		prog.EvalBatch(nil, bindColumns(t, prog, rowVals), out)
		for i, got := range out {
			rv, rerr := prog.Eval(&Env{Vars: rowVals[i]})
			if (rerr != nil) != (got.Err != nil) ||
				(rerr != nil && rerr.Error() != got.Err.Error()) ||
				(rerr == nil && !reflect.DeepEqual(rv, got.Val)) {
				t.Fatalf("%q row %d:\nper-record: v=%#v err=%v\nbatch:      v=%#v err=%v",
					src, i, rv, rerr, got.Val, got.Err)
			}
		}
	}
	if parsed == 0 {
		t.Fatal("no corpus entry parsed — harness is vacuous")
	}
}

// TestEvalBatchModelSelves sweeps a self column over model objects (and
// null), exercising navigation, allInstances (and its extent cache) and
// type operations on the batch path.
func TestEvalBatchModelSelves(t *testing.T) {
	_, m := libFixture(t)
	a1, b1, b2 := seedLibrary(t, m)
	selves := []any{a1, b1, b2, nil, b1}
	exprs := []string{
		"self.oclIsKindOf(Book) implies (self.pages > 0 and self.title.size() > 0)",
		"Book.allInstances()->size() >= 0",
		"self.oclIsTypeOf(Book)",
		"self.title.size() + self.title.size()",
	}
	env := &Env{Model: m}
	for _, src := range exprs {
		expr := MustParse(src)
		prog, err := CompileWith(expr, CompileOptions{Meta: m.Metamodel(), Vars: []string{"self"}})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		slot, _ := prog.Slot("self")
		out := make([]BatchResult, len(selves))
		prog.EvalBatch(env, []BoundColumn{{Slot: slot, Values: selves}}, out)
		for i, got := range out {
			iv, ierr := Eval(expr, &Env{Model: m, Vars: map[string]any{"self": selves[i]}})
			if (ierr != nil) != (got.Err != nil) ||
				(ierr != nil && ierr.Error() != got.Err.Error()) ||
				(ierr == nil && !reflect.DeepEqual(iv, got.Val)) {
				t.Fatalf("%q row %d:\ninterpreted: v=%#v err=%v\nbatch:       v=%#v err=%v",
					src, i, iv, ierr, got.Val, got.Err)
			}
		}
	}
}

// TestEvalBoolBatchMatchesEvalBool pins the Boolean coercion path row by
// row, including coercion failures (non-Boolean results).
func TestEvalBoolBatchMatchesEvalBool(t *testing.T) {
	const rows = 6
	rowVals := make([]map[string]any, rows)
	for i := range rowVals {
		rowVals[i] = batchRow(i)
	}
	exprs := []string{
		"p and q",
		"x > 0 or y > 0",
		"s.size()", // Integer → coercion error
		"s",        // String or null → error or false
		"xs->notEmpty() implies xs->first() >= 0",
	}
	for _, src := range exprs {
		expr := MustParse(src)
		prog, err := CompileWith(expr, CompileOptions{Vars: batchVars, AssumeBound: true})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		out := make([]BoolResult, rows)
		prog.EvalBoolBatch(nil, bindColumns(t, prog, rowVals), out)
		for i, got := range out {
			fr := prog.NewFrame(&Env{})
			for _, name := range batchVars {
				fr.SetVar(name, rowVals[i][name])
			}
			ok, err := fr.EvalBool()
			fr.Release()
			if (err != nil) != (got.Err != nil) ||
				(err != nil && err.Error() != got.Err.Error()) ||
				ok != got.OK {
				t.Fatalf("%q row %d:\nper-record: ok=%v err=%v\nbatch:      ok=%v err=%v",
					src, i, ok, err, got.OK, got.Err)
			}
		}
	}
}

// TestEvalBatchQuick is the randomized version: arbitrary scalar rows,
// full agreement between batch and interpreter on the expression table.
func TestEvalBatchQuick(t *testing.T) {
	exprs := batchDifferentialExprs(t)
	progs := make([]*Program, len(exprs))
	for i, expr := range exprs {
		p, err := CompileWith(expr, CompileOptions{Vars: batchVars, AssumeBound: true})
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		progs[i] = p
	}
	property := func(p1, q1 bool, x, y int8, r float64, s string, raw []int8) bool {
		xs := make([]any, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		rows := []map[string]any{
			{"a": int64(1), "p": p1, "q": q1, "r": r, "s": s, "x": int64(x), "xs": xs, "y": int64(y)},
			{"a": int64(1), "p": !p1, "q": q1, "r": -r, "s": s + "t", "x": int64(y), "xs": xs, "y": int64(x)},
		}
		for ei, expr := range exprs {
			prog := progs[ei]
			out := make([]BatchResult, len(rows))
			prog.EvalBatch(nil, bindColumns(t, prog, rows), out)
			for i, got := range out {
				iv, ierr := Eval(expr, &Env{Vars: rows[i]})
				if (ierr != nil) != (got.Err != nil) ||
					(ierr != nil && ierr.Error() != got.Err.Error()) ||
					(ierr == nil && !reflect.DeepEqual(iv, got.Val)) {
					t.Logf("diverged on %q row %d:\ninterpreted: v=%#v err=%v\nbatch:       v=%#v err=%v",
						expr, i, iv, ierr, got.Val, got.Err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatalf("batch differential property failed: %v", err)
	}
}
