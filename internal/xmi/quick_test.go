package xmi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/iso25012"
)

// randomModel builds a pseudo-random but well-formed DQ_WebRE model from a
// seed: a variable number of processes, contents, requirements and
// structural elements with randomized names and payloads.
func randomModel(seed int64) (*dqwebre.RequirementsModel, error) {
	rng := rand.New(rand.NewSource(seed))
	rm := dqwebre.NewRequirementsModel("random")
	dims := iso25012.Names()
	user := rm.WebUser(randName(rng, "user"))
	nProcs := 1 + rng.Intn(4)
	for i := 0; i < nProcs; i++ {
		proc := rm.WebProcess(randName(rng, "proc"), user)
		var fields []string
		for f := 0; f < 1+rng.Intn(4); f++ {
			fields = append(fields, randName(rng, "field"))
		}
		content := rm.Content(randName(rng, "content"), fields...)
		ic := rm.InformationCase(randName(rng, "ic"), proc, content)
		for r := 0; r < rng.Intn(3); r++ {
			dim := dims[rng.Intn(len(dims))]
			req := rm.DQRequirement(randName(rng, "req"), dim, ic)
			if rng.Intn(2) == 0 {
				rm.Specify(req, int64(rng.Intn(1000)+1), randName(rng, "text"))
			}
		}
		if rng.Intn(2) == 0 {
			ui := rm.WebUI(randName(rng, "page"))
			v := rm.DQValidator(randName(rng, "validator"),
				[]string{"check_" + randName(rng, "op")}, ui)
			lo := int64(rng.Intn(10))
			rm.DQConstraint(randName(rng, "constraint"), lo, lo+int64(rng.Intn(10)),
				[]string{randName(rng, "payload")}, v)
		}
		if rng.Intn(2) == 0 {
			rm.DQMetadata(randName(rng, "metadata"),
				[]string{randName(rng, "md"), randName(rng, "md")}, content)
		}
	}
	return rm, rm.Err()
}

var nameParts = []string{"alpha", "beta", "gamma", "delta", "épsilon", "zeta", "review", "score", "データ"}

func randName(rng *rand.Rand, prefix string) string {
	return prefix + " " + nameParts[rng.Intn(len(nameParts))] + " " + nameParts[rng.Intn(len(nameParts))]
}

// TestQuickXMLRoundTrip: any random well-formed model survives the XML
// round trip isomorphically.
func TestQuickXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rm, err := randomModel(seed)
		if err != nil {
			return false
		}
		data, err := Marshal(rm.Model)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data, opts())
		if err != nil {
			return false
		}
		ok, diff := Equivalent(rm.Model, back)
		if !ok {
			t.Logf("seed %d: %s", seed, diff)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJSONRoundTrip: same property through the JSON form.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rm, err := randomModel(seed)
		if err != nil {
			return false
		}
		data, err := MarshalJSON(rm.Model)
		if err != nil {
			return false
		}
		back, err := UnmarshalJSON(data, opts())
		if err != nil {
			return false
		}
		ok, diff := Equivalent(rm.Model, back)
		if !ok {
			t.Logf("seed %d: %s", seed, diff)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrossFormatAgreement: XML→model→JSON→model yields an equivalent
// model.
func TestQuickCrossFormatAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rm, err := randomModel(seed)
		if err != nil {
			return false
		}
		xmlData, err := Marshal(rm.Model)
		if err != nil {
			return false
		}
		viaXML, err := Unmarshal(xmlData, opts())
		if err != nil {
			return false
		}
		jsonData, err := MarshalJSON(viaXML)
		if err != nil {
			return false
		}
		viaJSON, err := UnmarshalJSON(jsonData, opts())
		if err != nil {
			return false
		}
		ok, _ := Equivalent(rm.Model, viaJSON)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
