package xmi

import (
	"context"

	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// instrument wraps one serialization operation with a span (child of the
// context's active span) and process-wide counters: operations and bytes
// moved, labeled by op ("marshal"/"unmarshal") and format ("xml"/"json").
func instrument(ctx context.Context, op, format string, fn func() (int, error)) error {
	_, span := obs.StartSpan(ctx, "xmi."+op)
	span.SetAttr("format", format)
	n, err := fn()
	span.SetAttr("bytes", n)
	span.Fail(err)
	span.End()

	labels := obs.Labels{"op": op, "format": format}
	reg := obs.Default()
	reg.Counter("xmi_operations_total", "XMI serialization operations, by op and format", labels).Inc()
	if err == nil {
		reg.Counter("xmi_bytes_total", "bytes serialized or parsed by the XMI layer", labels).
			Add(uint64(n))
	}
	return err
}

// MarshalContext is Marshal under the context's active span.
func MarshalContext(ctx context.Context, m *uml.Model) ([]byte, error) {
	var data []byte
	err := instrument(ctx, "marshal", "xml", func() (int, error) {
		var err error
		data, err = marshal(m)
		return len(data), err
	})
	return data, err
}

// UnmarshalContext is Unmarshal under the context's active span.
func UnmarshalContext(ctx context.Context, data []byte, opts Options) (*uml.Model, error) {
	var m *uml.Model
	err := instrument(ctx, "unmarshal", "xml", func() (int, error) {
		var err error
		m, err = unmarshal(data, opts)
		return len(data), err
	})
	return m, err
}

// MarshalJSONContext is MarshalJSON under the context's active span.
func MarshalJSONContext(ctx context.Context, m *uml.Model) ([]byte, error) {
	var data []byte
	err := instrument(ctx, "marshal", "json", func() (int, error) {
		var err error
		data, err = marshalJSON(m)
		return len(data), err
	})
	return data, err
}

// UnmarshalJSONContext is UnmarshalJSON under the context's active span.
func UnmarshalJSONContext(ctx context.Context, data []byte, opts Options) (*uml.Model, error) {
	var m *uml.Model
	err := instrument(ctx, "unmarshal", "json", func() (int, error) {
		var err error
		m, err = unmarshalJSON(data, opts)
		return len(data), err
	})
	return m, err
}
