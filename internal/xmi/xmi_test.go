package xmi

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/webre"
)

// buildSample constructs a small DQ_WebRE requirements model exercising all
// value kinds: strings, ints, enums, refs, lists and tagged values.
func buildSample(t testing.TB) *dqwebre.RequirementsModel {
	t.Helper()
	rm := dqwebre.NewRequirementsModel("sample")
	member := rm.WebUser("PC member")
	process := rm.WebProcess("Add new review to submission", member)
	content := rm.Content("evaluation scores", "overall_evaluation", "reviewer_confidence")
	ic := rm.InformationCase("Add all data as result of review", process, content)
	req := rm.DQRequirement("validate the score assigned to each topic of revision",
		iso25012.Precision, ic)
	rm.Specify(req, 4, "validate the score assigned to each topic of revision")
	ui := rm.WebUI("webpage of New Review")
	val := rm.DQValidator("score validator", []string{"check_precision"}, ui)
	rm.DQConstraint("score range", 0, 10, []string{"overall_evaluation in [-3,3]"}, val)
	rm.DQMetadata("traceability metadata",
		[]string{"stored_by", "stored_date"}, content)
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	return rm
}

func opts() Options {
	return Options{Profiles: []*uml.Profile{webre.Profile(), dqwebre.Profile()}}
}

func TestXMLRoundTrip(t *testing.T) {
	rm := buildSample(t)
	data, err := Marshal(rm.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), xmlHeaderPrefix) {
		t.Fatalf("missing XML header: %.60s", data)
	}
	back, err := Unmarshal(data, opts())
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := Equivalent(rm.Model, back); !ok {
		t.Fatalf("round trip not equivalent: %s", diff)
	}
	// And the re-marshal is byte-identical (determinism).
	data2, err := Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("re-marshal differs")
	}
}

const xmlHeaderPrefix = "<?xml"

func TestJSONRoundTrip(t *testing.T) {
	rm := buildSample(t)
	data, err := MarshalJSON(rm.Model)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSON(data, opts())
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := Equivalent(rm.Model, back); !ok {
		t.Fatalf("json round trip not equivalent: %s", diff)
	}
}

func TestXMLPreservesStereotypesAndTags(t *testing.T) {
	rm := buildSample(t)
	data, err := Marshal(rm.Model)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`stereotype="InformationCase"`,
		`stereotype="DQ_Requirement"`,
		`stereotype="DQConstraint"`,
		`name="upper_bound"`,
		`literal="Precision"`,
		`metamodel="DQ_WebRE"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized form lacks %q", want)
		}
	}
	back, err := Unmarshal(data, opts())
	if err != nil {
		t.Fatal(err)
	}
	cons := back.StereotypedBy(dqwebre.MetaDQConstraint)
	if len(cons) != 1 {
		t.Fatalf("constraints after round trip = %d", len(cons))
	}
	app, ok := back.Application(cons[0], dqwebre.MetaDQConstraint)
	if !ok {
		t.Fatal("application lost")
	}
	v, ok := app.Tag("upper_bound")
	if !ok || v != metamodel.Int(10) {
		t.Fatalf("upper_bound tag = %v", v)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	rm := buildSample(t)
	good, err := Marshal(rm.Model)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(string) string
		opt  Options
	}{
		{"bad xml", func(s string) string { return s[:len(s)/2] }, opts()},
		{"unknown metamodel", func(s string) string {
			return strings.Replace(s, `metamodel="DQ_WebRE"`, `metamodel="Ghost"`, 1)
		}, opts()},
		{"missing profile", func(s string) string { return s }, Options{}},
		{"unknown class", func(s string) string {
			return strings.Replace(s, `class="WebUser"`, `class="Ghost"`, 1)
		}, opts()},
		{"dangling ref", func(s string) string {
			return strings.Replace(s, `ref="WebUser.1"`, `ref="Ghost.9"`, 1)
		}, opts()},
		{"unknown stereotype", func(s string) string {
			return strings.Replace(s, `stereotype="InformationCase"`, `stereotype="Ghost"`, 1)
		}, opts()},
		{"bad literal", func(s string) string {
			return strings.Replace(s, `literal="Precision"`, `literal="Velocity"`, 1)
		}, opts()},
	}
	for _, c := range cases {
		if _, err := Unmarshal([]byte(c.mut(string(good))), c.opt); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	doc := &Document{
		Version: "2.1", Name: "d", Metamodel: "UML",
		Elements: []Element{
			{XID: "a", Class: "Actor"},
			{XID: "a", Class: "Actor"},
		},
	}
	uml.Metamodel() // ensure registered
	if _, err := FromDocument(doc, Options{}); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestMissingIDRejected(t *testing.T) {
	uml.Metamodel()
	doc := &Document{
		Version: "2.1", Name: "d", Metamodel: "UML",
		Elements: []Element{{Class: "Actor"}},
	}
	if _, err := FromDocument(doc, Options{}); err == nil {
		t.Fatal("missing id accepted")
	}
}

func TestForwardReferencesResolve(t *testing.T) {
	uml.Metamodel()
	doc := &Document{
		Version: "2.1", Name: "fwd", Metamodel: "UML",
		Elements: []Element{
			{XID: "i1", Class: "Include", Slots: []Slot{
				{Name: "addition", Value: XValue{Kind: "ref", Ref: "u2"}}, // forward
			}},
			{XID: "u2", Class: "UseCase", Slots: []Slot{
				{Name: "name", Value: XValue{Kind: "string", Text: "target"}},
			}},
		},
	}
	m, err := FromDocument(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, ok := m.ByXID("i1")
	if !ok || inc.GetRef("addition") == nil {
		t.Fatal("forward reference not resolved")
	}
}

func TestEquivalentDetectsDifferences(t *testing.T) {
	a := buildSample(t)
	b := buildSample(t)
	if ok, _ := Equivalent(a.Model, b.Model); !ok {
		t.Fatal("identically built models should be equivalent")
	}
	// Mutate one slot.
	procs, _ := b.Model.AllInstancesOf("WebProcess")
	procs[0].MustSet("name", metamodel.String("renamed"))
	if ok, diff := Equivalent(a.Model, b.Model); ok || diff == "" {
		t.Fatal("difference not detected")
	}
	// Different element counts.
	c := buildSample(t)
	c.WebUser("extra")
	if ok, diff := Equivalent(a.Model, c.Model); ok || !strings.Contains(diff, "count") {
		t.Fatalf("count difference not detected: %s", diff)
	}
}

func TestValueKindsRoundTrip(t *testing.T) {
	// A synthetic metamodel exercising bool and real slots, absent from the
	// DQ fixture.
	p := metamodel.NewPackage("VK")
	boolT := p.AddDataType("Boolean", metamodel.PrimBoolean)
	realT := p.AddDataType("Real", metamodel.PrimReal)
	c := p.AddClass("Thing")
	c.AddAttr("flag", boolT)
	c.AddAttr("score", realT)
	metamodel.MustRegister(p)

	m := uml.NewModel("vk", p)
	o := m.MustCreate("Thing")
	o.MustSet("flag", metamodel.Bool(true))
	o.MustSet("score", metamodel.Real(2.75))

	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bo := back.Objects()[0]
	if !bo.GetBool("flag") {
		t.Fatal("bool lost")
	}
	if v, _ := bo.Get("score"); v != metamodel.Real(2.75) {
		t.Fatalf("real = %v", v)
	}
}

func TestDiffIdenticalModelsEmpty(t *testing.T) {
	a := buildSample(t)
	b := buildSample(t)
	if ds := Diff(a.Model, b.Model); len(ds) != 0 {
		t.Fatalf("diff of identical builds = %v", ds)
	}
}

func TestDiffDetectsEveryKind(t *testing.T) {
	a := buildSample(t)
	b := buildSample(t)

	// Slot change.
	proc, _ := b.Model.FindByName("WebProcess", "Add new review to submission")
	proc.MustSet("name", metamodel.String("renamed process"))
	// Addition.
	b.WebUser("extra user")
	// Tag change.
	cons := b.Model.StereotypedBy(dqwebre.MetaDQConstraint)[0]
	app, _ := b.Model.Application(cons, dqwebre.MetaDQConstraint)
	app.MustSetTag("upper_bound", metamodel.Int(99))
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}

	ds := Diff(a.Model, b.Model)
	kinds := map[DiffKind]int{}
	for _, d := range ds {
		kinds[d.Kind]++
		if d.String() == "" {
			t.Error("empty rendering")
		}
	}
	if kinds[DiffSlotChanged] == 0 {
		t.Errorf("no slot change detected: %v", ds)
	}
	if kinds[DiffAdded] == 0 {
		t.Errorf("no addition detected: %v", ds)
	}
	if kinds[DiffTagChanged] != 1 {
		t.Errorf("tag changes = %d: %v", kinds[DiffTagChanged], ds)
	}

	// Removal: diff the other way round sees the extra user as removed.
	rds := Diff(b.Model, a.Model)
	removed := 0
	for _, d := range rds {
		if d.Kind == DiffRemoved {
			removed++
		}
	}
	if removed == 0 {
		t.Errorf("no removal detected: %v", rds)
	}
}

func TestDiffStereotypeSetChange(t *testing.T) {
	a := buildSample(t)
	b := buildSample(t)
	// Unapply a stereotype in b.
	val := b.Model.StereotypedBy(dqwebre.MetaDQValidator)[0]
	s, _ := b.Model.ResolveStereotype(dqwebre.MetaDQValidator)
	b.Model.Unapply(val, s)
	ds := Diff(a.Model, b.Model)
	found := false
	for _, d := range ds {
		if d.Kind == DiffStereotypesChanged {
			found = true
		}
	}
	if !found {
		t.Fatalf("stereotype change not detected: %v", ds)
	}
}

func TestDiffDeterministicOrder(t *testing.T) {
	a := buildSample(t)
	b := buildSample(t)
	b.WebUser("zzz")
	b.WebUser("aaa")
	d1 := Diff(a.Model, b.Model)
	d2 := Diff(a.Model, b.Model)
	if len(d1) != len(d2) {
		t.Fatal("diff length unstable")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("diff order unstable")
		}
	}
}
