package xmi

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/modeldriven/dqwebre/internal/uml"
)

// jsonDoc mirrors Document for JSON encoding. The XML attribute tags do not
// carry over, so the structure is redeclared with json tags.
type jsonDoc struct {
	Version   string     `json:"version"`
	Name      string     `json:"name"`
	Metamodel string     `json:"metamodel"`
	Profiles  []string   `json:"profiles,omitempty"`
	Elements  []jsonElem `json:"elements"`
	Applied   []jsonAppl `json:"stereotypes,omitempty"`
}

type jsonElem struct {
	XID   string             `json:"id"`
	Class string             `json:"class"`
	Slots map[string]jsonVal `json:"slots,omitempty"`
}

type jsonAppl struct {
	Element    string             `json:"element"`
	Profile    string             `json:"profile"`
	Stereotype string             `json:"stereotype"`
	Tags       map[string]jsonVal `json:"tags,omitempty"`
}

type jsonVal struct {
	Kind    string    `json:"kind"`
	Text    string    `json:"text,omitempty"`
	Enum    string    `json:"enum,omitempty"`
	Literal string    `json:"literal,omitempty"`
	Ref     string    `json:"ref,omitempty"`
	Items   []jsonVal `json:"items,omitempty"`
}

func toJSONVal(x XValue) jsonVal {
	out := jsonVal{Kind: x.Kind, Text: x.Text, Enum: x.Enum, Literal: x.Literal, Ref: x.Ref}
	for _, item := range x.Items {
		out.Items = append(out.Items, toJSONVal(item))
	}
	return out
}

func fromJSONVal(j jsonVal) XValue {
	out := XValue{Kind: j.Kind, Text: j.Text, Enum: j.Enum, Literal: j.Literal, Ref: j.Ref}
	for _, item := range j.Items {
		out.Items = append(out.Items, fromJSONVal(item))
	}
	return out
}

// MarshalJSON serializes the model as JSON (an alternative interchange form
// to the XML produced by Marshal).
func MarshalJSON(m *uml.Model) ([]byte, error) {
	return MarshalJSONContext(context.Background(), m)
}

func marshalJSON(m *uml.Model) ([]byte, error) {
	doc, err := ToDocument(m)
	if err != nil {
		return nil, err
	}
	jd := jsonDoc{
		Version:   doc.Version,
		Name:      doc.Name,
		Metamodel: doc.Metamodel,
		Profiles:  doc.Profiles,
	}
	for _, el := range doc.Elements {
		je := jsonElem{XID: el.XID, Class: el.Class}
		if len(el.Slots) > 0 {
			je.Slots = make(map[string]jsonVal, len(el.Slots))
			for _, s := range el.Slots {
				je.Slots[s.Name] = toJSONVal(s.Value)
			}
		}
		jd.Elements = append(jd.Elements, je)
	}
	for _, a := range doc.Applied {
		ja := jsonAppl{Element: a.Element, Profile: a.Profile, Stereotype: a.Stereotype}
		if len(a.Tags) > 0 {
			ja.Tags = make(map[string]jsonVal, len(a.Tags))
			for _, tg := range a.Tags {
				ja.Tags[tg.Name] = toJSONVal(tg.Value)
			}
		}
		jd.Applied = append(jd.Applied, ja)
	}
	return json.MarshalIndent(jd, "", "  ")
}

// UnmarshalJSON reconstructs a model from the JSON form.
func UnmarshalJSON(data []byte, opts Options) (*uml.Model, error) {
	return UnmarshalJSONContext(context.Background(), data, opts)
}

func unmarshalJSON(data []byte, opts Options) (*uml.Model, error) {
	var jd jsonDoc
	if err := json.Unmarshal(data, &jd); err != nil {
		return nil, fmt.Errorf("xmi: json parse: %w", err)
	}
	doc := &Document{
		Version:   jd.Version,
		Name:      jd.Name,
		Metamodel: jd.Metamodel,
		Profiles:  jd.Profiles,
	}
	for _, je := range jd.Elements {
		el := Element{XID: je.XID, Class: je.Class}
		// Deterministic slot order for reproducible re-marshals.
		for _, name := range sortedKeys(je.Slots) {
			el.Slots = append(el.Slots, Slot{Name: name, Value: fromJSONVal(je.Slots[name])})
		}
		doc.Elements = append(doc.Elements, el)
	}
	for _, ja := range jd.Applied {
		a := Applied{Element: ja.Element, Profile: ja.Profile, Stereotype: ja.Stereotype}
		for _, name := range sortedKeys(ja.Tags) {
			a.Tags = append(a.Tags, Slot{Name: name, Value: fromJSONVal(ja.Tags[name])})
		}
		doc.Applied = append(doc.Applied, a)
	}
	return FromDocument(doc, opts)
}

func sortedKeys(m map[string]jsonVal) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Small maps; insertion sort keeps this dependency-free and readable.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
