package xmi

import (
	"fmt"
	"sort"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// DiffKind classifies one model difference.
type DiffKind string

// Difference kinds.
const (
	// DiffAdded: the element exists only in the new model.
	DiffAdded DiffKind = "added"
	// DiffRemoved: the element exists only in the old model.
	DiffRemoved DiffKind = "removed"
	// DiffClassChanged: same id, different metaclass.
	DiffClassChanged DiffKind = "class-changed"
	// DiffSlotChanged: a slot was set, cleared or changed.
	DiffSlotChanged DiffKind = "slot-changed"
	// DiffStereotypesChanged: the applied stereotype set differs.
	DiffStereotypesChanged DiffKind = "stereotypes-changed"
	// DiffTagChanged: a tagged value was set, cleared or changed.
	DiffTagChanged DiffKind = "tag-changed"
)

// Difference is one structural difference between two models, keyed by the
// elements' stable external ids.
type Difference struct {
	// Kind classifies the difference.
	Kind DiffKind
	// XID identifies the element.
	XID string
	// Detail names the slot/tag/stereotype involved, when applicable.
	Detail string
	// Old and New render the differing values ("" when absent).
	Old, New string
}

// String renders the difference for reports.
func (d Difference) String() string {
	switch d.Kind {
	case DiffAdded:
		return fmt.Sprintf("+ %s (%s)", d.XID, d.New)
	case DiffRemoved:
		return fmt.Sprintf("- %s (%s)", d.XID, d.Old)
	default:
		detail := ""
		if d.Detail != "" {
			detail = "." + d.Detail
		}
		return fmt.Sprintf("~ %s%s: %s -> %s [%s]", d.XID, detail, orNone(d.Old), orNone(d.New), d.Kind)
	}
}

func orNone(s string) string {
	if s == "" {
		return "<unset>"
	}
	return s
}

// Diff computes the structural differences from old to new: elements are
// matched by external id (AssignXIDs is invoked on both, so models built
// in the same element order align; models loaded from XMI keep their
// serialized ids). The result is deterministic: sorted by xid, then kind,
// then detail.
func Diff(oldM, newM *uml.Model) []Difference {
	oldM.AssignXIDs()
	newM.AssignXIDs()

	oldByID := map[string]*metamodel.Object{}
	for _, o := range oldM.Objects() {
		oldByID[o.XID()] = o
	}
	newByID := map[string]*metamodel.Object{}
	for _, o := range newM.Objects() {
		newByID[o.XID()] = o
	}

	var out []Difference
	for id, o := range oldByID {
		n, ok := newByID[id]
		if !ok {
			out = append(out, Difference{Kind: DiffRemoved, XID: id, Old: o.Label()})
			continue
		}
		out = append(out, diffElement(oldM, newM, id, o, n)...)
	}
	for id, n := range newByID {
		if _, ok := oldByID[id]; !ok {
			out = append(out, Difference{Kind: DiffAdded, XID: id, New: n.Label()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].XID != out[j].XID {
			return out[i].XID < out[j].XID
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

func diffElement(oldM, newM *uml.Model, id string, o, n *metamodel.Object) []Difference {
	var out []Difference
	if o.Class().Name() != n.Class().Name() {
		out = append(out, Difference{
			Kind: DiffClassChanged, XID: id,
			Old: o.Class().Name(), New: n.Class().Name(),
		})
		// Slots of different classes are not comparable.
		return out
	}
	// Slots.
	slots := map[string]bool{}
	for _, s := range o.SetProperties() {
		slots[s] = true
	}
	for _, s := range n.SetProperties() {
		slots[s] = true
	}
	for s := range slots {
		ov, oOK := o.Get(s)
		nv, nOK := n.Get(s)
		switch {
		case oOK && !nOK:
			out = append(out, Difference{Kind: DiffSlotChanged, XID: id, Detail: s, Old: ov.String()})
		case !oOK && nOK:
			out = append(out, Difference{Kind: DiffSlotChanged, XID: id, Detail: s, New: nv.String()})
		case oOK && nOK && !valueEquivalent(ov, nv):
			out = append(out, Difference{Kind: DiffSlotChanged, XID: id, Detail: s,
				Old: ov.String(), New: nv.String()})
		}
	}
	// Stereotypes.
	oSt, nSt := oldM.StereotypeNames(o), newM.StereotypeNames(n)
	if !sameStringSet(oSt, nSt) {
		out = append(out, Difference{Kind: DiffStereotypesChanged, XID: id,
			Old: fmt.Sprintf("%v", oSt), New: fmt.Sprintf("%v", nSt)})
	} else {
		for _, name := range oSt {
			oa, _ := oldM.Application(o, name)
			na, _ := newM.Application(n, name)
			tags := map[string]bool{}
			for _, tg := range oa.TagNames() {
				tags[tg] = true
			}
			for _, tg := range na.TagNames() {
				tags[tg] = true
			}
			for tg := range tags {
				ov, oOK := oa.Tag(tg)
				nv, nOK := na.Tag(tg)
				switch {
				case oOK && !nOK:
					out = append(out, Difference{Kind: DiffTagChanged, XID: id,
						Detail: name + "/" + tg, Old: ov.String()})
				case !oOK && nOK:
					out = append(out, Difference{Kind: DiffTagChanged, XID: id,
						Detail: name + "/" + tg, New: nv.String()})
				case oOK && nOK && !valueEquivalent(ov, nv):
					out = append(out, Difference{Kind: DiffTagChanged, XID: id,
						Detail: name + "/" + tg, Old: ov.String(), New: nv.String()})
				}
			}
		}
	}
	return out
}
