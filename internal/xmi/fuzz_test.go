// Fuzzing for the model codecs: arbitrary bytes must never panic either
// decoder, and any document that does decode must survive a full
// marshal→unmarshal→marshal round trip byte-for-byte (the codec's
// isomorphism promise, checked from a hostile starting point instead of a
// hand-built model).
package xmi

import (
	"bytes"
	"testing"

	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/webre"
)

func FuzzUnmarshal(f *testing.F) {
	dqwebre.Metamodel() // ensure the profile's metamodel is registered
	opts := Options{Profiles: []*uml.Profile{webre.Profile(), dqwebre.Profile()}}

	// Inline seeds cover the trivially small shapes; the checked-in corpus
	// under testdata/fuzz/FuzzUnmarshal carries full demo documents and
	// structurally broken variants.
	f.Add([]byte(`<xmi version="2.1" name="M" metamodel="DQ_WebRE"></xmi>`))
	f.Add([]byte(`{"name":"M","metamodel":"DQ_WebRE","elements":[]}`))
	f.Add([]byte(`<xmi`))
	f.Add([]byte(`{"name":`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := Unmarshal(data, opts); err == nil {
			roundTrip(t, m, opts, Marshal, Unmarshal)
		}
		if m, err := UnmarshalJSON(data, opts); err == nil {
			roundTrip(t, m, opts, MarshalJSON, UnmarshalJSON)
		}
	})
}

// roundTrip asserts marshal→unmarshal→marshal is byte-stable for a model
// that was itself produced by a successful decode.
func roundTrip(t *testing.T, m *uml.Model, opts Options,
	marshal func(*uml.Model) ([]byte, error),
	unmarshal func([]byte, Options) (*uml.Model, error)) {
	t.Helper()
	out, err := marshal(m)
	if err != nil {
		t.Fatalf("decoded model fails to marshal: %v", err)
	}
	m2, err := unmarshal(out, opts)
	if err != nil {
		t.Fatalf("marshaled doc fails to re-unmarshal: %v\ndoc:\n%s", err, out)
	}
	out2, err := marshal(m2)
	if err != nil {
		t.Fatalf("re-decoded model fails to marshal: %v", err)
	}
	if !bytes.Equal(out, out2) {
		t.Fatalf("round trip is not stable:\nfirst:\n%s\nsecond:\n%s", out, out2)
	}
}
