// Package xmi serializes profiled models to an XMI-flavoured XML document
// and back, and to an equivalent JSON form. The format is deliberately
// simple and explicit: every object carries a stable external id (xid), its
// metaclass name, and its explicitly set slots; stereotype applications with
// their tagged values follow in a trailer. Round-tripping a model yields an
// isomorphic model (same classes, slots, references and applications).
package xmi

import (
	"context"
	"encoding/xml"
	"fmt"
	"sort"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// Document is the XML document root.
type Document struct {
	XMLName   xml.Name  `xml:"xmi"`
	Version   string    `xml:"version,attr"`
	Name      string    `xml:"name,attr"`
	Metamodel string    `xml:"metamodel,attr"`
	Elements  []Element `xml:"element"`
	Applied   []Applied `xml:"stereotypes>application"`
	Profiles  []string  `xml:"profiles>profile,omitempty"`
}

// Element is one serialized object.
type Element struct {
	XID   string `xml:"id,attr"`
	Class string `xml:"class,attr"`
	Slots []Slot `xml:"slot"`
}

// Slot is one explicitly set property value.
type Slot struct {
	Name  string `xml:"name,attr"`
	Value XValue `xml:"value"`
}

// XValue is the XML encoding of a metamodel.Value; exactly one field is
// populated, discriminated by Kind.
type XValue struct {
	Kind    string   `xml:"kind,attr"`
	Text    string   `xml:"text,attr,omitempty"`
	Enum    string   `xml:"enum,attr,omitempty"`
	Literal string   `xml:"literal,attr,omitempty"`
	Ref     string   `xml:"ref,attr,omitempty"`
	Items   []XValue `xml:"item,omitempty"`
}

// Applied is one serialized stereotype application.
type Applied struct {
	Element    string `xml:"element,attr"`
	Profile    string `xml:"profile,attr"`
	Stereotype string `xml:"stereotype,attr"`
	Tags       []Slot `xml:"tag"`
}

// Marshal serializes the model. External ids are assigned first, so the
// output is deterministic for a given model construction order.
func Marshal(m *uml.Model) ([]byte, error) {
	return MarshalContext(context.Background(), m)
}

func marshal(m *uml.Model) ([]byte, error) {
	doc, err := ToDocument(m)
	if err != nil {
		return nil, err
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmi: marshal: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// ToDocument builds the serializable document form of a model.
func ToDocument(m *uml.Model) (*Document, error) {
	m.AssignXIDs()
	doc := &Document{
		Version:   "2.1",
		Name:      m.Name(),
		Metamodel: m.Metamodel().Name(),
	}
	for _, p := range m.Profiles() {
		doc.Profiles = append(doc.Profiles, p.Name())
	}
	for _, o := range m.Objects() {
		el := Element{XID: o.XID(), Class: o.Class().Name()}
		for _, prop := range o.SetProperties() {
			v, _ := o.Get(prop)
			xv, err := encodeValue(v)
			if err != nil {
				return nil, fmt.Errorf("xmi: %s.%s: %w", o.Label(), prop, err)
			}
			el.Slots = append(el.Slots, Slot{Name: prop, Value: xv})
		}
		doc.Elements = append(doc.Elements, el)

		for _, app := range m.Applications(o) {
			a := Applied{
				Element:    o.XID(),
				Profile:    app.Stereotype.Profile().Name(),
				Stereotype: app.Stereotype.Name(),
			}
			for _, tag := range app.TagNames() {
				v, _ := app.Tag(tag)
				xv, err := encodeValue(v)
				if err != nil {
					return nil, fmt.Errorf("xmi: tag %s on %s: %w", tag, o.Label(), err)
				}
				a.Tags = append(a.Tags, Slot{Name: tag, Value: xv})
			}
			doc.Applied = append(doc.Applied, a)
		}
	}
	return doc, nil
}

func encodeValue(v metamodel.Value) (XValue, error) {
	switch t := v.(type) {
	case metamodel.String:
		return XValue{Kind: "string", Text: string(t)}, nil
	case metamodel.Int:
		return XValue{Kind: "int", Text: fmt.Sprintf("%d", int64(t))}, nil
	case metamodel.Bool:
		return XValue{Kind: "bool", Text: fmt.Sprintf("%t", bool(t))}, nil
	case metamodel.Real:
		return XValue{Kind: "real", Text: fmt.Sprintf("%g", float64(t))}, nil
	case metamodel.EnumLit:
		return XValue{Kind: "enum", Enum: t.Enum.Name(), Literal: t.Literal}, nil
	case metamodel.Ref:
		if t.Target == nil {
			return XValue{}, fmt.Errorf("nil reference")
		}
		if t.Target.XID() == "" {
			return XValue{}, fmt.Errorf("reference to %s outside the model (no xid)", t.Target.Label())
		}
		return XValue{Kind: "ref", Ref: t.Target.XID()}, nil
	case *metamodel.List:
		out := XValue{Kind: "list"}
		for _, item := range t.Items {
			xi, err := encodeValue(item)
			if err != nil {
				return XValue{}, err
			}
			out.Items = append(out.Items, xi)
		}
		return out, nil
	default:
		return XValue{}, fmt.Errorf("unsupported value kind %T", v)
	}
}

// Options configure Unmarshal.
type Options struct {
	// Metamodels resolves metamodel names; defaults to the process-wide
	// metamodel registry.
	Metamodels func(name string) (*metamodel.Package, bool)
	// Profiles supplies the profiles referenced by the document.
	Profiles []*uml.Profile
}

// Unmarshal parses an XMI document and reconstructs the model. Objects are
// created in document order in a first pass; slots and stereotype
// applications are wired in a second pass, so forward references are legal.
func Unmarshal(data []byte, opts Options) (*uml.Model, error) {
	return UnmarshalContext(context.Background(), data, opts)
}

func unmarshal(data []byte, opts Options) (*uml.Model, error) {
	var doc Document
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("xmi: parse: %w", err)
	}
	return FromDocument(&doc, opts)
}

// FromDocument reconstructs a model from its document form.
func FromDocument(doc *Document, opts Options) (*uml.Model, error) {
	lookup := opts.Metamodels
	if lookup == nil {
		lookup = metamodel.Lookup
	}
	mm, ok := lookup(doc.Metamodel)
	if !ok {
		return nil, fmt.Errorf("xmi: unknown metamodel %q", doc.Metamodel)
	}
	m := uml.NewModel(doc.Name, mm)

	profByName := map[string]*uml.Profile{}
	for _, p := range opts.Profiles {
		profByName[p.Name()] = p
		m.ApplyProfile(p)
	}
	for _, want := range doc.Profiles {
		if _, ok := profByName[want]; !ok {
			return nil, fmt.Errorf("xmi: document references profile %q not supplied in Options", want)
		}
	}

	// Pass 1: create objects.
	byXID := map[string]*metamodel.Object{}
	for _, el := range doc.Elements {
		if el.XID == "" {
			return nil, fmt.Errorf("xmi: element of class %q lacks an id", el.Class)
		}
		if _, dup := byXID[el.XID]; dup {
			return nil, fmt.Errorf("xmi: duplicate element id %q", el.XID)
		}
		o, err := m.Create(el.Class)
		if err != nil {
			return nil, fmt.Errorf("xmi: element %q: %w", el.XID, err)
		}
		o.SetXID(el.XID)
		byXID[el.XID] = o
	}

	// Pass 2: slots.
	for _, el := range doc.Elements {
		o := byXID[el.XID]
		for _, slot := range el.Slots {
			v, err := decodeValue(slot.Value, m, byXID)
			if err != nil {
				return nil, fmt.Errorf("xmi: %s.%s: %w", el.XID, slot.Name, err)
			}
			if err := o.Set(slot.Name, v); err != nil {
				return nil, fmt.Errorf("xmi: %s: %w", el.XID, err)
			}
		}
	}

	// Pass 3: stereotype applications.
	for _, a := range doc.Applied {
		o, ok := byXID[a.Element]
		if !ok {
			return nil, fmt.Errorf("xmi: application references unknown element %q", a.Element)
		}
		p, ok := profByName[a.Profile]
		if !ok {
			return nil, fmt.Errorf("xmi: application references unknown profile %q", a.Profile)
		}
		s, ok := p.Stereotype(a.Stereotype)
		if !ok {
			return nil, fmt.Errorf("xmi: profile %q has no stereotype %q", a.Profile, a.Stereotype)
		}
		app, err := m.Apply(o, s)
		if err != nil {
			return nil, fmt.Errorf("xmi: %w", err)
		}
		for _, tag := range a.Tags {
			v, err := decodeValue(tag.Value, m, byXID)
			if err != nil {
				return nil, fmt.Errorf("xmi: tag %s on %s: %w", tag.Name, a.Element, err)
			}
			if err := app.SetTag(tag.Name, v); err != nil {
				return nil, fmt.Errorf("xmi: %w", err)
			}
		}
	}
	// Index the external ids with the model so ByXID resolves.
	m.AssignXIDs()
	return m, nil
}

func decodeValue(xv XValue, m *uml.Model, byXID map[string]*metamodel.Object) (metamodel.Value, error) {
	switch xv.Kind {
	case "string":
		return metamodel.String(xv.Text), nil
	case "int":
		var n int64
		if _, err := fmt.Sscanf(xv.Text, "%d", &n); err != nil {
			return nil, fmt.Errorf("bad int %q", xv.Text)
		}
		return metamodel.Int(n), nil
	case "bool":
		switch xv.Text {
		case "true":
			return metamodel.Bool(true), nil
		case "false":
			return metamodel.Bool(false), nil
		}
		return nil, fmt.Errorf("bad bool %q", xv.Text)
	case "real":
		var f float64
		if _, err := fmt.Sscanf(xv.Text, "%g", &f); err != nil {
			return nil, fmt.Errorf("bad real %q", xv.Text)
		}
		return metamodel.Real(f), nil
	case "enum":
		cl, ok := m.Metamodel().FindClassifier(xv.Enum)
		if !ok {
			return nil, fmt.Errorf("unknown enumeration %q", xv.Enum)
		}
		en, ok := cl.(*metamodel.Enumeration)
		if !ok {
			return nil, fmt.Errorf("%q is not an enumeration", xv.Enum)
		}
		if !en.Has(xv.Literal) {
			return nil, fmt.Errorf("%q is not a literal of %q", xv.Literal, xv.Enum)
		}
		return metamodel.EnumLit{Enum: en, Literal: xv.Literal}, nil
	case "ref":
		target, ok := byXID[xv.Ref]
		if !ok {
			return nil, fmt.Errorf("unresolved reference %q", xv.Ref)
		}
		return metamodel.Ref{Target: target}, nil
	case "list":
		out := &metamodel.List{}
		for _, item := range xv.Items {
			v, err := decodeValue(item, m, byXID)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown value kind %q", xv.Kind)
	}
}

// Equivalent reports whether two models are isomorphic under their external
// ids: same metamodel, same element set (by xid and class), same slots and
// same stereotype applications. It is used by round-trip tests and the CLI's
// diff mode; the returned string describes the first difference found.
func Equivalent(a, b *uml.Model) (bool, string) {
	a.AssignXIDs()
	b.AssignXIDs()
	if a.Metamodel().Name() != b.Metamodel().Name() {
		return false, fmt.Sprintf("metamodel %q vs %q", a.Metamodel().Name(), b.Metamodel().Name())
	}
	ao, bo := a.Objects(), b.Objects()
	if len(ao) != len(bo) {
		return false, fmt.Sprintf("element count %d vs %d", len(ao), len(bo))
	}
	bByXID := map[string]*metamodel.Object{}
	for _, o := range bo {
		bByXID[o.XID()] = o
	}
	for _, oa := range ao {
		ob, ok := bByXID[oa.XID()]
		if !ok {
			return false, fmt.Sprintf("element %q missing", oa.XID())
		}
		if oa.Class().Name() != ob.Class().Name() {
			return false, fmt.Sprintf("element %q class %q vs %q", oa.XID(), oa.Class().Name(), ob.Class().Name())
		}
		pa, pb := oa.SetProperties(), ob.SetProperties()
		if len(pa) != len(pb) {
			return false, fmt.Sprintf("element %q slot count %d vs %d", oa.XID(), len(pa), len(pb))
		}
		for _, prop := range pa {
			va, _ := oa.Get(prop)
			vb, okb := ob.Get(prop)
			if !okb {
				return false, fmt.Sprintf("element %q slot %q missing", oa.XID(), prop)
			}
			if !valueEquivalent(va, vb) {
				return false, fmt.Sprintf("element %q slot %q differs: %s vs %s",
					oa.XID(), prop, va.String(), vb.String())
			}
		}
		appsA, appsB := a.StereotypeNames(oa), b.StereotypeNames(ob)
		if !sameStringSet(appsA, appsB) {
			return false, fmt.Sprintf("element %q stereotypes %v vs %v", oa.XID(), appsA, appsB)
		}
		for _, name := range appsA {
			aa, _ := a.Application(oa, name)
			ab, _ := b.Application(ob, name)
			ta, tb := aa.TagNames(), ab.TagNames()
			if !sameStringSet(ta, tb) {
				return false, fmt.Sprintf("element %q «%s» tags %v vs %v", oa.XID(), name, ta, tb)
			}
			for _, tag := range ta {
				va, _ := aa.Tag(tag)
				vb, _ := ab.Tag(tag)
				if !valueEquivalent(va, vb) {
					return false, fmt.Sprintf("element %q «%s» tag %q differs", oa.XID(), name, tag)
				}
			}
		}
	}
	return true, ""
}

// valueEquivalent compares values across models: references compare by
// target xid rather than identity.
func valueEquivalent(a, b metamodel.Value) bool {
	switch ta := a.(type) {
	case metamodel.Ref:
		tb, ok := b.(metamodel.Ref)
		return ok && ta.Target != nil && tb.Target != nil && ta.Target.XID() == tb.Target.XID()
	case metamodel.EnumLit:
		tb, ok := b.(metamodel.EnumLit)
		return ok && ta.Enum.Name() == tb.Enum.Name() && ta.Literal == tb.Literal
	case *metamodel.List:
		tb, ok := b.(*metamodel.List)
		if !ok || len(ta.Items) != len(tb.Items) {
			return false
		}
		for i := range ta.Items {
			if !valueEquivalent(ta.Items[i], tb.Items[i]) {
				return false
			}
		}
		return true
	default:
		return a.Equal(b)
	}
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sa := append([]string(nil), a...)
	sb := append([]string(nil), b...)
	sort.Strings(sa)
	sort.Strings(sb)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
