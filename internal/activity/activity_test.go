package activity

import (
	"fmt"
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// TestExecuteFig7AgainstEnforcer runs the paper's Fig. 7 activity diagram
// as a workflow: UserTransactions fill the review record field by field,
// the Add_DQ_Metadata activities invoke the runtime enforcer, and the
// decision loops back until the record passes every DQ check.
func TestExecuteFig7AgainstEnforcer(t *testing.T) {
	e := easychair.MustBuildModel()
	dqsr, _, err := transform.RunDQR2DQSR(e.Model)
	if err != nil {
		t.Fatal(err)
	}
	enf, err := dqruntime.BuildFromDQSR(dqsr)
	if err != nil {
		t.Fatal(err)
	}

	// The record the PC member "types" in: first attempt incomplete, the
	// fix-input loop supplies the rest.
	attempts := []dqruntime.Record{
		{ // first pass: missing fields, bad score
			"first_name":         "Grace",
			"overall_evaluation": "9",
		},
		{ // after the [no: fix input] loop: complete and precise
			"first_name":          "Grace",
			"last_name":           "Hopper",
			"email_address":       "grace@navy.mil",
			"overall_evaluation":  "2",
			"reviewer_confidence": "4",
		},
	}
	attempt := 0
	record := attempts[attempt]

	var storedMetadata, verified []string
	hooks := Hooks{
		OnUserTransaction: func(n *metamodel.Object) error {
			// Each transaction contributes its content's fields from the
			// current attempt.
			for _, content := range n.GetRefs("data") {
				for _, a := range content.GetRefs("attributes") {
					f := a.GetString("name")
					if v, ok := record[f]; ok {
						record[f] = v
					}
				}
			}
			return nil
		},
		OnAddDQMetadata: func(n *metamodel.Object) error {
			if store := n.GetRef("metadata"); store != nil {
				storedMetadata = append(storedMetadata, store.GetString("name"))
				if strings.Contains(store.GetString("name"), "traceability") {
					enf.OnStore("review/exec", "grace", 2, []string{"chair"})
				}
				return nil
			}
			if n.GetRef("validator") != nil {
				verified = append(verified, n.GetString("name"))
			}
			return nil
		},
		Decide: func(n *metamodel.Object, guards []string) (int, error) {
			passed := enf.CheckInput(record).Passed()
			for i, g := range guards {
				if passed && g == "yes" {
					return i, nil
				}
				if !passed && strings.HasPrefix(g, "no") {
					// Loop back with the corrected input.
					attempt++
					if attempt >= len(attempts) {
						return 0, fmt.Errorf("out of attempts")
					}
					record = attempts[attempt]
					return i, nil
				}
			}
			return 0, fmt.Errorf("no matching guard in %v", guards)
		},
	}

	it, err := New(e.Model.Model, e.Activity, hooks)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := it.Run()
	if err != nil {
		t.Fatalf("execution failed: %v\ntrace: %v", err, trace)
	}

	// Two passes through the five transactions plus the DQ tail.
	names := trace.Names()
	count := func(want string) int {
		n := 0
		for _, s := range names {
			if s == want {
				n++
			}
		}
		return n
	}
	if count("add reviewer information") != 2 {
		t.Errorf("transaction executed %d times, want 2 (one retry)", count("add reviewer information"))
	}
	if count("store metadata of traceability") != 2 {
		t.Errorf("traceability capture executed %d times", count("store metadata of traceability"))
	}
	if got := len(verified); got != 4 { // 2 verification activities × 2 passes
		t.Errorf("verification activities executed %d times, want 4", got)
	}
	// The final node terminated the run.
	if trace[len(trace)-1].Kind != uml.MetaActivityFinalNode {
		t.Fatalf("last step = %v", trace[len(trace)-1])
	}
	// Metadata actually reached the enforcer's store.
	if _, ok := enf.Store().Get("review/exec"); !ok {
		t.Fatal("traceability metadata not captured during execution")
	}
	// The record the workflow converged on passes all checks.
	if !enf.CheckInput(record).Passed() {
		t.Fatal("final record should pass")
	}
}

// buildLinear constructs initial → action → final.
func buildLinear(t *testing.T) (*uml.Model, *metamodel.Object, *metamodel.Object) {
	t.Helper()
	m := uml.NewModel("lin", uml.Metamodel())
	b := uml.NewBuilder(m)
	act := b.Activity("linear")
	start := b.Node(act, uml.MetaInitialNode, "", nil)
	step := b.Node(act, uml.MetaAction, "do it", nil)
	end := b.Node(act, uml.MetaActivityFinalNode, "", nil)
	b.FlowChain(act, start, step, end)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	return m, act, step
}

func TestLinearActivity(t *testing.T) {
	m, act, _ := buildLinear(t)
	var ran []string
	it, err := New(m, act, Hooks{
		OnAction: func(n *metamodel.Object) error {
			ran = append(ran, n.GetString("name"))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 1 || ran[0] != "do it" {
		t.Fatalf("ran = %v", ran)
	}
	if len(trace) != 3 {
		t.Fatalf("trace = %v", trace)
	}
	if trace[1].String() != `Action "do it"` {
		t.Fatalf("step rendering = %q", trace[1].String())
	}
}

func TestHookErrorPropagates(t *testing.T) {
	m, act, _ := buildLinear(t)
	it, _ := New(m, act, Hooks{
		OnAction: func(n *metamodel.Object) error { return fmt.Errorf("boom") },
	})
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestStructuralErrors(t *testing.T) {
	m := uml.NewModel("bad", uml.Metamodel())
	b := uml.NewBuilder(m)

	// No initial node.
	noStart := b.Activity("no-start")
	b.Node(noStart, uml.MetaAction, "a", nil)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	it, _ := New(m, noStart, Hooks{})
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "no initial node") {
		t.Fatalf("err = %v", err)
	}

	// Dead end.
	deadEnd := b.Activity("dead-end")
	s := b.Node(deadEnd, uml.MetaInitialNode, "", nil)
	a := b.Node(deadEnd, uml.MetaAction, "stuck", nil)
	b.Flow(deadEnd, s, a, "")
	it, _ = New(m, deadEnd, Hooks{})
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "no outgoing flow") {
		t.Fatalf("err = %v", err)
	}

	// Two initial nodes.
	twoStarts := b.Activity("two-starts")
	b.Node(twoStarts, uml.MetaInitialNode, "", nil)
	b.Node(twoStarts, uml.MetaInitialNode, "", nil)
	it, _ = New(m, twoStarts, Hooks{})
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "multiple initial nodes") {
		t.Fatalf("err = %v", err)
	}

	// Decision without a hook.
	noHook := b.Activity("no-hook")
	s2 := b.Node(noHook, uml.MetaInitialNode, "", nil)
	d := b.Node(noHook, uml.MetaDecisionNode, "", nil)
	e1 := b.Node(noHook, uml.MetaActivityFinalNode, "", nil)
	e2 := b.Node(noHook, uml.MetaActivityFinalNode, "", nil)
	b.Flow(noHook, s2, d, "")
	b.Flow(noHook, d, e1, "x")
	b.Flow(noHook, d, e2, "y")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	it, _ = New(m, noHook, Hooks{})
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "Decide hook") {
		t.Fatalf("err = %v", err)
	}

	// Decide out of range.
	it, _ = New(m, noHook, Hooks{Decide: func(n *metamodel.Object, g []string) (int, error) { return 9, nil }})
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "chose") {
		t.Fatalf("err = %v", err)
	}

	// Fan-out from a plain action.
	fanOut := b.Activity("fan-out")
	s3 := b.Node(fanOut, uml.MetaInitialNode, "", nil)
	a3 := b.Node(fanOut, uml.MetaAction, "split", nil)
	f1 := b.Node(fanOut, uml.MetaActivityFinalNode, "", nil)
	f2 := b.Node(fanOut, uml.MetaActivityFinalNode, "", nil)
	b.Flow(fanOut, s3, a3, "")
	b.Flow(fanOut, a3, f1, "")
	b.Flow(fanOut, a3, f2, "")
	it, _ = New(m, fanOut, Hooks{})
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "not a decision") {
		t.Fatalf("err = %v", err)
	}
}

func TestLivelockBounded(t *testing.T) {
	m := uml.NewModel("loop", uml.Metamodel())
	b := uml.NewBuilder(m)
	act := b.Activity("forever")
	s := b.Node(act, uml.MetaInitialNode, "", nil)
	a := b.Node(act, uml.MetaAction, "spin", nil)
	b.Flow(act, s, a, "")
	b.Flow(act, a, a, "") // self-loop
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	it, _ := New(m, act, Hooks{})
	it.MaxSteps = 50
	if _, err := it.Run(); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	m := uml.NewModel("v", uml.Metamodel())
	b := uml.NewBuilder(m)
	notActivity := b.Actor("a")
	if _, err := New(m, notActivity, Hooks{}); err == nil {
		t.Fatal("non-activity accepted")
	}
	if _, err := New(nil, nil, Hooks{}); err == nil {
		t.Fatal("nils accepted")
	}
}
