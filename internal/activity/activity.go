// Package activity interprets UML activity graphs: token flow from the
// initial node through actions, decisions, merges, forks and joins to the
// final node, with application-supplied hooks for the stereotyped node
// kinds of the paper's Fig. 7 (UserTransaction, Add_DQ_Metadata).
//
// This makes the paper's activity diagram executable: the EasyChair model's
// "Add new review to submission" activity can be run as a workflow whose
// DQ activities call straight into the dqruntime enforcer — the diagrams
// are not just documentation.
package activity

import (
	"fmt"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// Hooks supplies behaviour for the node kinds an activity can contain.
// Nil hooks make the corresponding nodes no-ops (still traced).
type Hooks struct {
	// OnUserTransaction runs for WebRE «UserTransaction» nodes.
	OnUserTransaction func(node *metamodel.Object) error
	// OnAddDQMetadata runs for «Add_DQ_Metadata» nodes.
	OnAddDQMetadata func(node *metamodel.Object) error
	// OnAction runs for any other executable node kind.
	OnAction func(node *metamodel.Object) error
	// Decide resolves a decision node: it receives the node and the guards
	// of its outgoing edges (in edge order; unguarded edges contribute "")
	// and returns the index of the edge to follow. Required when the
	// activity contains a decision node with more than one outgoing edge.
	Decide func(node *metamodel.Object, guards []string) (int, error)
}

// Step records one executed node.
type Step struct {
	// Node is the executed node.
	Node *metamodel.Object
	// Kind is the node's metaclass name.
	Kind string
	// Name is the node's name ("" for control nodes).
	Name string
	// Guard is the guard of the edge taken to leave a decision node.
	Guard string
}

// String renders the step for logs.
func (s Step) String() string {
	if s.Name == "" {
		return s.Kind
	}
	if s.Guard != "" {
		return fmt.Sprintf("%s %q [%s]", s.Kind, s.Name, s.Guard)
	}
	return fmt.Sprintf("%s %q", s.Kind, s.Name)
}

// Trace is the ordered list of executed steps.
type Trace []Step

// Names returns the names of the named steps, in order.
func (t Trace) Names() []string {
	var out []string
	for _, s := range t {
		if s.Name != "" {
			out = append(out, s.Name)
		}
	}
	return out
}

// Interpreter executes one activity of a model.
type Interpreter struct {
	model    *uml.Model
	activity *metamodel.Object
	hooks    Hooks
	// MaxSteps bounds execution (loops are legal); default 10_000.
	MaxSteps int
}

// New creates an interpreter for the given activity element.
func New(m *uml.Model, activity *metamodel.Object, hooks Hooks) (*Interpreter, error) {
	if m == nil || activity == nil {
		return nil, fmt.Errorf("activity: nil model or activity")
	}
	if !activity.IsA(uml.MustClass(uml.MetaActivity)) {
		return nil, fmt.Errorf("activity: %s is not an Activity", activity.Label())
	}
	return &Interpreter{model: m, activity: activity, hooks: hooks, MaxSteps: 10_000}, nil
}

// Run executes the activity from its initial node to an activity-final
// node, returning the execution trace.
func (it *Interpreter) Run() (Trace, error) {
	nodes := it.activity.GetRefs("nodes")
	edges := it.activity.GetRefs("edges")

	outgoing := map[*metamodel.Object][]*metamodel.Object{}
	for _, e := range edges {
		src := e.GetRef("source")
		if src != nil {
			outgoing[src] = append(outgoing[src], e)
		}
	}

	var initial *metamodel.Object
	for _, n := range nodes {
		if n.Class().Name() == uml.MetaInitialNode {
			if initial != nil {
				return nil, fmt.Errorf("activity %q has multiple initial nodes",
					it.activity.GetString("name"))
			}
			initial = n
		}
	}
	if initial == nil {
		return nil, fmt.Errorf("activity %q has no initial node", it.activity.GetString("name"))
	}

	var trace Trace
	cur := initial
	steps := 0
	for {
		steps++
		if steps > it.MaxSteps {
			return trace, fmt.Errorf("activity %q exceeded %d steps (livelock?)",
				it.activity.GetString("name"), it.MaxSteps)
		}
		kind := cur.Class().Name()
		step := Step{Node: cur, Kind: kind, Name: cur.GetString("name")}

		// Execute the node.
		if err := it.execute(cur, kind); err != nil {
			return trace, fmt.Errorf("activity %q at %s: %w",
				it.activity.GetString("name"), step, err)
		}

		if kind == uml.MetaActivityFinalNode {
			trace = append(trace, step)
			return trace, nil
		}

		// Pick the next edge.
		outs := outgoing[cur]
		var next *metamodel.Object
		switch {
		case len(outs) == 0:
			return trace, fmt.Errorf("activity %q: node %s has no outgoing flow",
				it.activity.GetString("name"), cur.Label())
		case len(outs) == 1:
			next = outs[0].GetRef("target")
			step.Guard = outs[0].GetString("guard")
		default:
			if kind != uml.MetaDecisionNode {
				// Forks would branch here; this interpreter runs a single
				// token, so plain nodes must not fan out.
				if kind == uml.MetaForkNode {
					return trace, fmt.Errorf("activity %q: fork %s: concurrent regions not supported by the single-token interpreter",
						it.activity.GetString("name"), cur.Label())
				}
				return trace, fmt.Errorf("activity %q: node %s has %d outgoing flows but is not a decision",
					it.activity.GetString("name"), cur.Label(), len(outs))
			}
			if it.hooks.Decide == nil {
				return trace, fmt.Errorf("activity %q: decision %s needs a Decide hook",
					it.activity.GetString("name"), cur.Label())
			}
			guards := make([]string, len(outs))
			for i, e := range outs {
				guards[i] = e.GetString("guard")
			}
			idx, err := it.hooks.Decide(cur, guards)
			if err != nil {
				return trace, fmt.Errorf("activity %q: decision %s: %w",
					it.activity.GetString("name"), cur.Label(), err)
			}
			if idx < 0 || idx >= len(outs) {
				return trace, fmt.Errorf("activity %q: decision %s: Decide chose %d of %d",
					it.activity.GetString("name"), cur.Label(), idx, len(outs))
			}
			next = outs[idx].GetRef("target")
			step.Guard = guards[idx]
		}
		trace = append(trace, step)
		if next == nil {
			return trace, fmt.Errorf("activity %q: dangling flow from %s",
				it.activity.GetString("name"), cur.Label())
		}
		cur = next
	}
}

// execute dispatches the node to the right hook by metaclass conformance.
func (it *Interpreter) execute(n *metamodel.Object, kind string) error {
	switch kind {
	case uml.MetaInitialNode, uml.MetaActivityFinalNode,
		uml.MetaDecisionNode, uml.MetaMergeNode,
		uml.MetaForkNode, uml.MetaJoinNode:
		return nil // control nodes carry no behaviour
	}
	if isKindOf(it.model, n, "Add_DQ_Metadata") {
		if it.hooks.OnAddDQMetadata != nil {
			return it.hooks.OnAddDQMetadata(n)
		}
		return nil
	}
	if isKindOf(it.model, n, "UserTransaction") {
		if it.hooks.OnUserTransaction != nil {
			return it.hooks.OnUserTransaction(n)
		}
		return nil
	}
	if it.hooks.OnAction != nil {
		return it.hooks.OnAction(n)
	}
	return nil
}

func isKindOf(m *uml.Model, o *metamodel.Object, class string) bool {
	c, ok := m.Metamodel().FindClass(class)
	return ok && o.IsA(c)
}
