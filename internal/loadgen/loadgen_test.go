package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCountsStatusesAndShed(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			w.WriteHeader(http.StatusServiceUnavailable)
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{URL: srv.URL, Concurrency: 4, Requests: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 100 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.Status[200]+res.Status[503]+res.Status[429] != 100 {
		t.Fatalf("status sum: %v", res.Status)
	}
	if res.Shed != res.Status[503]+res.Status[429] || res.Shed == 0 {
		t.Fatalf("shed = %d, statuses %v", res.Shed, res.Status)
	}
	if len(res.Latencies) != 100 {
		t.Fatalf("latencies = %d", len(res.Latencies))
	}
	if res.Percentile(50) > res.Percentile(99) {
		t.Fatal("percentiles not monotone")
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunDurationBound(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	start := time.Now()
	res, err := Run(context.Background(), Config{URL: srv.URL, Concurrency: 2, Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("duration bound ignored")
	}
	if res.Total == 0 {
		t.Fatal("no requests completed within the duration")
	}
}

func TestRunPathsRoundRobin(t *testing.T) {
	var a, b atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/a":
			a.Add(1)
		case "/b":
			b.Add(1)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{URL: srv.URL, Paths: []string{"/a", "/b"}, Concurrency: 2, Requests: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[404] != 0 {
		t.Fatalf("unexpected 404s: %v", res.Status)
	}
	if a.Load() == 0 || b.Load() == 0 {
		t.Fatalf("paths not round-robined: a=%d b=%d", a.Load(), b.Load())
	}
}

func TestRunRequiresURL(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("empty URL accepted")
	}
}

func TestReportMentionsPercentilesAndShed(t *testing.T) {
	res := &Result{
		Total: 3, Elapsed: time.Second,
		Status:    map[int]int{200: 2, 503: 1},
		Shed:      1,
		Latencies: []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
	}
	var b strings.Builder
	res.WriteReport(&b)
	out := b.String()
	for _, want := range []string{"p50=", "p90=", "p99=", "throughput:", "status 503:", "shed:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
