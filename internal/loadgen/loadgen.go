// Package loadgen drives configurable concurrent HTTP traffic at a running
// server and reports throughput, latency percentiles and shed counts. It
// exists to exercise the serving stack's resilience layer end to end: the
// concurrency and rate limiters show up as 503/429 in its report, and the
// drain path can be benchmarked by shutting the server down mid-run.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes one load run.
type Config struct {
	// URL is the target base URL, e.g. "http://localhost:8080".
	URL string
	// Paths are request paths appended to URL round-robin; default "/".
	Paths []string
	// Concurrency is the number of worker goroutines; default 8.
	Concurrency int
	// Requests is the total request budget; <= 0 means run until Duration.
	Requests int
	// Duration bounds the run in time; <= 0 with Requests <= 0 defaults to
	// 2048 requests.
	Duration time.Duration
	// Timeout is the per-request timeout; default 10s.
	Timeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one.
	Client *http.Client
}

// Result is the aggregated outcome of a load run.
type Result struct {
	// Total counts completed requests (any status); Errors counts
	// transport failures (connection refused, timeout, ...).
	Total, Errors int
	// Status counts responses by status code.
	Status map[int]int
	// Shed counts 429 + 503 responses: traffic the server deliberately
	// rejected to protect itself.
	Shed int
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
	// Latencies of successful round trips, sorted ascending.
	Latencies []time.Duration
}

// Throughput returns completed requests per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Total) / r.Elapsed.Seconds()
}

// Percentile returns the p-th latency percentile (0 < p <= 100); 0 when no
// latencies were recorded.
func (r *Result) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(r.Latencies))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.Latencies) {
		idx = len(r.Latencies) - 1
	}
	return r.Latencies[idx]
}

// Run fires the configured load and aggregates the outcome. It returns an
// error only for unusable configuration; transport failures are counted in
// the result, since shedding servers legitimately reset connections.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if strings.TrimSpace(cfg.URL) == "" {
		return nil, fmt.Errorf("loadgen: target URL is required")
	}
	base := strings.TrimSuffix(cfg.URL, "/")
	paths := cfg.Paths
	if len(paths) == 0 {
		paths = []string{"/"}
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 8
	}
	budget := cfg.Requests
	if budget <= 0 && cfg.Duration <= 0 {
		budget = 2048
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        workers * 2,
				MaxIdleConnsPerHost: workers * 2,
			},
		}
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	var next atomic.Int64 // request sequence; also round-robins paths
	type shard struct {
		total, errors, shed int
		status              map[int]int
		lat                 []time.Duration
	}
	shards := make([]shard, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			s.status = make(map[int]int)
			for {
				seq := next.Add(1)
				if budget > 0 && int(seq) > budget {
					return
				}
				if ctx.Err() != nil {
					return
				}
				path := paths[int(seq)%len(paths)]
				if !strings.HasPrefix(path, "/") {
					path = "/" + path
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
				if err != nil {
					s.errors++
					continue
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					s.errors++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				s.total++
				s.status[resp.StatusCode]++
				if resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable {
					s.shed++
				}
				s.lat = append(s.lat, time.Since(t0))
			}
		}(&shards[w])
	}
	wg.Wait()

	res := &Result{Status: make(map[int]int), Elapsed: time.Since(start)}
	for i := range shards {
		res.Total += shards[i].total
		res.Errors += shards[i].errors
		res.Shed += shards[i].shed
		for code, n := range shards[i].status {
			res.Status[code] += n
		}
		res.Latencies = append(res.Latencies, shards[i].lat...)
	}
	sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })
	return res, nil
}

// WriteReport renders the human-readable run report.
func (r *Result) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "requests:    %d completed, %d transport errors in %s\n",
		r.Total, r.Errors, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput:  %.1f req/s\n", r.Throughput())
	if len(r.Latencies) > 0 {
		fmt.Fprintf(w, "latency:     p50=%s p90=%s p99=%s max=%s\n",
			r.Percentile(50).Round(time.Microsecond),
			r.Percentile(90).Round(time.Microsecond),
			r.Percentile(99).Round(time.Microsecond),
			r.Latencies[len(r.Latencies)-1].Round(time.Microsecond))
	}
	codes := make([]int, 0, len(r.Status))
	for code := range r.Status {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(w, "status %d:  %d\n", code, r.Status[code])
	}
	fmt.Fprintf(w, "shed:        %d (429 rate-limited + 503 overload)\n", r.Shed)
}
