package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Server-side telemetry correlation: a load run without the server's view
// only tells half the story (a 503 counted client-side could be the
// limiter or a proxy). ScrapeMetrics grabs the target's /metrics before
// and after the run, and ServerDelta reports what the server says it did
// in between — shed counts by reason, session churn, in-flight level —
// so the client and server numbers can be lined up in one report.

// MetricsSnapshot maps exposition sample keys — `name` or
// `name{labels...}` verbatim — to their values at scrape time.
type MetricsSnapshot map[string]float64

// ScrapeMetrics fetches and parses a Prometheus text exposition endpoint.
// Histogram bucket/sum/count samples come back under their full sample
// names like any other series.
func ScrapeMetrics(ctx context.Context, client *http.Client, url string) (MetricsSnapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scraping %s: %s", url, resp.Status)
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics reads a Prometheus text exposition into a snapshot.
// Comment and malformed lines are skipped — a scrape for deltas must not
// fail because one family renders oddly.
func ParseMetrics(r io.Reader) (MetricsSnapshot, error) {
	snap := make(MetricsSnapshot)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the field after the last space; label values may
		// contain spaces, so cut from the right.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		key := strings.TrimSpace(line[:i])
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		snap[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// Family sums every series of one metric family (the bare name plus any
// labeled series).
func (s MetricsSnapshot) Family(name string) float64 {
	var total float64
	for key, v := range s {
		if key == name || strings.HasPrefix(key, name+"{") {
			total += v
		}
	}
	return total
}

// ServerDelta is the server-side story of one load run, derived from two
// snapshots of the target's /metrics.
type ServerDelta struct {
	// Requests is the growth of http_requests_total across the run.
	Requests float64
	// Shed is the growth of http_requests_shed_total, split by reason
	// label (concurrency, rate); ShedTotal sums them.
	Shed      map[string]float64
	ShedTotal float64
	// SessionsCreated is the growth of webapp_sessions_created_total;
	// SessionsActive the gauge's closing value.
	SessionsCreated float64
	SessionsActive  float64
	// Inflight is the closing http_inflight_requests level — non-zero
	// after the run means requests were still draining at scrape time.
	Inflight float64
}

// DiffServerMetrics derives the run's server-side deltas from the before
// and after snapshots.
func DiffServerMetrics(before, after MetricsSnapshot) ServerDelta {
	d := ServerDelta{
		Requests:        after.Family("http_requests_total") - before.Family("http_requests_total"),
		Shed:            make(map[string]float64),
		SessionsCreated: after.Family("webapp_sessions_created_total") - before.Family("webapp_sessions_created_total"),
		SessionsActive:  after.Family("webapp_sessions_active"),
		Inflight:        after.Family("http_inflight_requests"),
	}
	const shedName = "http_requests_shed_total"
	for key, v := range after {
		if key != shedName && !strings.HasPrefix(key, shedName+"{") {
			continue
		}
		delta := v - before[key]
		if delta == 0 {
			continue
		}
		reason := "unknown"
		if i := strings.Index(key, `reason="`); i >= 0 {
			rest := key[i+len(`reason="`):]
			if j := strings.IndexByte(rest, '"'); j >= 0 {
				reason = rest[:j]
			}
		}
		d.Shed[reason] += delta
		d.ShedTotal += delta
	}
	return d
}

// WriteReport renders the server-side section of a load report.
func (d ServerDelta) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "server:      %.0f requests observed, %.0f shed", d.Requests, d.ShedTotal)
	if len(d.Shed) > 0 {
		reasons := make([]string, 0, len(d.Shed))
		for r := range d.Shed {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		parts := make([]string, len(reasons))
		for i, r := range reasons {
			parts[i] = fmt.Sprintf("%s %.0f", r, d.Shed[r])
		}
		fmt.Fprintf(w, " (%s)", strings.Join(parts, ", "))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "sessions:    %.0f created during the run, %.0f active after\n",
		d.SessionsCreated, d.SessionsActive)
	fmt.Fprintf(w, "inflight:    %.0f still in flight at final scrape\n", d.Inflight)
}
