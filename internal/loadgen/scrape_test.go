package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const sampleExposition = `# HELP http_requests_total Total HTTP requests
# TYPE http_requests_total counter
http_requests_total{method="GET",path="/",status="200"} 90
http_requests_total{method="POST",path="/papers",status="201"} 10
# TYPE http_requests_shed_total counter
http_requests_shed_total{reason="concurrency"} 5
http_requests_shed_total{reason="rate"} 2
webapp_sessions_active 3
webapp_sessions_created_total 4
http_inflight_requests 1
weird_label{msg="has spaces in it"} 7
malformed_line_without_value
not_a_number{x="y"} oops
`

func TestParseMetrics(t *testing.T) {
	snap, err := ParseMetrics(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]float64{
		`http_requests_total{method="GET",path="/",status="200"}`: 90,
		`http_requests_shed_total{reason="rate"}`:                 2,
		`webapp_sessions_active`:                                  3,
		`weird_label{msg="has spaces in it"}`:                     7,
	}
	for key, want := range cases {
		if got := snap[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	// Comment, malformed and unparseable lines are skipped, not fatal.
	if _, ok := snap["malformed_line_without_value"]; ok {
		t.Error("malformed line should be skipped")
	}
	if _, ok := snap[`not_a_number{x="y"}`]; ok {
		t.Error("non-numeric value should be skipped")
	}
}

func TestFamilySumsSeries(t *testing.T) {
	snap, err := ParseMetrics(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Family("http_requests_total"); got != 100 {
		t.Errorf("http_requests_total family = %g, want 100", got)
	}
	if got := snap.Family("webapp_sessions_active"); got != 3 {
		t.Errorf("bare-name family = %g, want 3", got)
	}
	// A name that is a prefix of another must not absorb its series.
	if got := snap.Family("http_requests"); got != 0 {
		t.Errorf("prefix name matched %g, want 0", got)
	}
}

func TestDiffServerMetrics(t *testing.T) {
	before, _ := ParseMetrics(strings.NewReader(`http_requests_total 100
http_requests_shed_total{reason="concurrency"} 5
webapp_sessions_created_total 2
`))
	after, _ := ParseMetrics(strings.NewReader(`http_requests_total 180
http_requests_shed_total{reason="concurrency"} 9
http_requests_shed_total{reason="rate"} 3
webapp_sessions_created_total 6
webapp_sessions_active 4
http_inflight_requests 2
`))
	d := DiffServerMetrics(before, after)
	if d.Requests != 80 {
		t.Errorf("requests delta = %g, want 80", d.Requests)
	}
	if d.Shed["concurrency"] != 4 || d.Shed["rate"] != 3 || d.ShedTotal != 7 {
		t.Errorf("shed = %+v total %g, want concurrency 4, rate 3, total 7", d.Shed, d.ShedTotal)
	}
	if d.SessionsCreated != 4 || d.SessionsActive != 4 || d.Inflight != 2 {
		t.Errorf("sessions/inflight = %+v", d)
	}

	var b strings.Builder
	d.WriteReport(&b)
	out := b.String()
	for _, want := range []string{
		"server:      80 requests observed, 7 shed (concurrency 4, rate 3)",
		"sessions:    4 created during the run, 4 active after",
		"inflight:    2 still in flight at final scrape",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestScrapeMetrics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("up 1\n"))
	}))
	defer srv.Close()

	snap, err := ScrapeMetrics(context.Background(), nil, srv.URL+"/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if snap["up"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	// Non-200 responses are an error, not an empty snapshot.
	if _, err := ScrapeMetrics(context.Background(), nil, srv.URL+"/nope"); err == nil {
		t.Error("404 scrape should error")
	}
}
