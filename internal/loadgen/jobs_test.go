package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubJobServer mimics the dqserve job API: it accepts submissions up to
// a capacity, sheds the rest with 503, and reports each job done after
// two status polls.
type stubJobServer struct {
	mu       sync.Mutex
	capacity int
	accepted int
	polls    map[string]int
	bodies   map[string]int
}

func (s *stubJobServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.accepted >= s.capacity {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		s.accepted++
		id := fmt.Sprintf("job%04d", s.accepted)
		s.bodies[id] = len(body)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q,"state":"queued"}`, id)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.bodies[id]; !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		s.polls[id]++
		state := "running"
		if s.polls[id] >= 2 {
			state = "done"
		}
		fmt.Fprintf(w, `{"id":%q,"state":%q}`, id, state)
	})
	return mux
}

func TestRunJobsAgainstStubServer(t *testing.T) {
	stub := &stubJobServer{capacity: 5, polls: map[string]int{}, bodies: map[string]int{}}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	body := []byte(`{"a":"1"}` + "\n" + `{"a":"2"}` + "\n")
	res, err := RunJobs(context.Background(), JobConfig{
		URL:         ts.URL,
		Body:        body,
		Jobs:        8,
		Concurrency: 3,
		PollEvery:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 5 || res.Done != 5 {
		t.Fatalf("submitted/done = %d/%d, want 5/5", res.Submitted, res.Done)
	}
	if res.Shed != 3 {
		t.Fatalf("shed = %d, want 3", res.Shed)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if len(res.SubmitLatencies) != 5 || len(res.CompleteLatencies) != 5 {
		t.Fatalf("latencies = %d submit / %d complete, want 5/5",
			len(res.SubmitLatencies), len(res.CompleteLatencies))
	}
	for id, n := range stub.bodies {
		if n != len(body) {
			t.Fatalf("job %s received %d body bytes, want %d", id, n, len(body))
		}
	}

	var report strings.Builder
	res.WriteReport(&report)
	for _, want := range []string{"5 submitted", "5 done", "shed:        3", "submit:", "complete:"} {
		if !strings.Contains(report.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, report.String())
		}
	}
}

func TestRunJobsValidatesConfig(t *testing.T) {
	if _, err := RunJobs(context.Background(), JobConfig{Body: []byte("x")}); err == nil {
		t.Fatal("missing URL accepted")
	}
	if _, err := RunJobs(context.Background(), JobConfig{URL: "http://x"}); err == nil {
		t.Fatal("missing body accepted")
	}
}
