package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// JobConfig parameterizes a job-API load run against a `dqwebre serve`
// server: each logical request POSTs a full NDJSON body to /v1/jobs and
// polls the returned job to a terminal state, so the run measures the
// whole submit→validate→report pipeline, not just the HTTP front door.
type JobConfig struct {
	// URL is the server base URL, e.g. "http://localhost:8081".
	URL string
	// Body is the NDJSON record payload each submission posts.
	Body []byte
	// Model is the ?model= reference; "" uses the server's default model.
	Model string
	// Jobs is the number of submissions; default 16.
	Jobs int
	// Concurrency is the number of concurrent submitters; default 4.
	Concurrency int
	// PollEvery is the status-poll interval; default 50ms.
	PollEvery time.Duration
	// Timeout is the per-request timeout; default 10s.
	Timeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one.
	Client *http.Client
}

// JobResult aggregates a job-API load run.
type JobResult struct {
	// Submitted counts accepted submissions (202); Done/Failed/Cancelled
	// count how those jobs ended; Shed counts submissions the server
	// rejected with 429/503; Errors counts transport failures and
	// unexpected statuses.
	Submitted, Done, Failed, Cancelled, Shed, Errors int
	// SubmitLatencies measure POST /v1/jobs round trips (admission +
	// staging); CompleteLatencies measure submit-to-terminal-state spans.
	// Both sorted ascending.
	SubmitLatencies, CompleteLatencies []time.Duration
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
}

// percentile returns the p-th percentile of sorted durations.
func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(lat))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}

// RunJobs fires the configured job submissions and follows each to a
// terminal state. Like Run, it errors only on unusable configuration;
// shed submissions and transport failures are counted in the result.
func RunJobs(ctx context.Context, cfg JobConfig) (*JobResult, error) {
	if strings.TrimSpace(cfg.URL) == "" {
		return nil, fmt.Errorf("loadgen: target URL is required")
	}
	if len(cfg.Body) == 0 {
		return nil, fmt.Errorf("loadgen: job body is required")
	}
	base := strings.TrimSuffix(cfg.URL, "/")
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 16
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 4
	}
	if workers > jobs {
		workers = jobs
	}
	poll := cfg.PollEvery
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}

	submitURL := base + "/v1/jobs"
	if cfg.Model != "" {
		submitURL += "?model=" + cfg.Model
	}

	type shard struct {
		JobResult
	}
	shards := make([]shard, workers)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			for {
				if int(next.Add(1)) > jobs || ctx.Err() != nil {
					return
				}
				s.runOne(ctx, client, submitURL, base, cfg.Body, poll)
			}
		}(&shards[w])
	}
	wg.Wait()

	res := &JobResult{Elapsed: time.Since(start)}
	for i := range shards {
		s := &shards[i]
		res.Submitted += s.Submitted
		res.Done += s.Done
		res.Failed += s.Failed
		res.Cancelled += s.Cancelled
		res.Shed += s.Shed
		res.Errors += s.Errors
		res.SubmitLatencies = append(res.SubmitLatencies, s.SubmitLatencies...)
		res.CompleteLatencies = append(res.CompleteLatencies, s.CompleteLatencies...)
	}
	sort.Slice(res.SubmitLatencies, func(i, j int) bool { return res.SubmitLatencies[i] < res.SubmitLatencies[j] })
	sort.Slice(res.CompleteLatencies, func(i, j int) bool { return res.CompleteLatencies[i] < res.CompleteLatencies[j] })
	return res, nil
}

// runOne submits one job and polls it to a terminal state, recording the
// outcome into r.
func (r *JobResult) runOne(ctx context.Context, client *http.Client, submitURL, base string, body []byte, poll time.Duration) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, submitURL, bytes.NewReader(body))
	if err != nil {
		r.Errors++
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			r.Errors++
		}
		return
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	submitLat := time.Since(t0)
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		r.Shed++
		return
	default:
		r.Errors++
		return
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &accepted); err != nil || accepted.ID == "" {
		r.Errors++
		return
	}
	r.Submitted++
	r.SubmitLatencies = append(r.SubmitLatencies, submitLat)

	statusURL := base + "/v1/jobs/" + accepted.ID
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(poll):
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, statusURL, nil)
		if err != nil {
			r.Errors++
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				r.Errors++
			}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			r.Errors++
			return
		}
		var status struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &status); err != nil {
			r.Errors++
			return
		}
		switch status.State {
		case "done":
			r.Done++
		case "failed":
			r.Failed++
		case "cancelled":
			r.Cancelled++
		default:
			continue
		}
		r.CompleteLatencies = append(r.CompleteLatencies, time.Since(t0))
		return
	}
}

// WriteReport renders the human-readable job-run report.
func (r *JobResult) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "jobs:        %d submitted (%d done, %d failed, %d cancelled), %d errors in %s\n",
		r.Submitted, r.Done, r.Failed, r.Cancelled, r.Errors, r.Elapsed.Round(time.Millisecond))
	if len(r.SubmitLatencies) > 0 {
		fmt.Fprintf(w, "submit:      p50=%s p99=%s max=%s\n",
			percentile(r.SubmitLatencies, 50).Round(time.Microsecond),
			percentile(r.SubmitLatencies, 99).Round(time.Microsecond),
			r.SubmitLatencies[len(r.SubmitLatencies)-1].Round(time.Microsecond))
	}
	if len(r.CompleteLatencies) > 0 {
		fmt.Fprintf(w, "complete:    p50=%s p99=%s max=%s\n",
			percentile(r.CompleteLatencies, 50).Round(time.Microsecond),
			percentile(r.CompleteLatencies, 99).Round(time.Microsecond),
			r.CompleteLatencies[len(r.CompleteLatencies)-1].Round(time.Microsecond))
	}
	fmt.Fprintf(w, "shed:        %d (429 rate-limited + 503 queue full)\n", r.Shed)
}
