package dqruntime

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// Enforcer is the assembled runtime for one web functionality: the input
// validator, the metadata store, and flags for which metadata-driven
// requirements are active. BuildFromDQSR constructs one directly from a
// DQSR model, closing the paper's loop: DQR (model) → DQSR (model) →
// executable enforcement.
type Enforcer struct {
	validator *Validator
	store     *MetadataStore
	// traceability and confidentiality report whether those metadata-driven
	// requirements were present in the DQSR model.
	traceability    bool
	confidentiality bool
	// dqModel carries the required minimum levels (1.0 per captured
	// characteristic: the paper's requirements are pass/fail).
	dqModel *iso25012.DQModel
	// requirements summarizes the source requirements for reporting.
	requirements []RequirementSummary
	// reg, when non-nil, receives per-characteristic pass/fail counters on
	// every check execution (see Instrument).
	reg *obs.Registry
	// checkCounters caches the {pass, fail} counter pair per check, in
	// validator check order, so the instrumented hot path is two atomic
	// increments away from the uninstrumented one instead of a label-map
	// allocation and registry lookup per check.
	checkCounters [][2]*obs.Counter
	// observer, when non-nil, receives check-level attribution (outcome,
	// score, latency, context label) from CheckInputLabeled; see attrib.go.
	observer CheckObserver
}

// RequirementSummary is one DQSR entry as seen by the enforcer.
type RequirementSummary struct {
	// ID and Title identify the requirement.
	ID    int64
	Title string
	// Dimension is the ISO/IEC 25012 characteristic.
	Dimension iso25012.Characteristic
	// Description is the detailed specification text.
	Description string
	// Mechanism is "validator" or "metadata".
	Mechanism string
}

// BuildFromDQSR assembles an Enforcer from a DQSR model (the output of the
// DQR2DQSR transformation). Validation-driven requirements become checks:
//
//	Completeness → CompletenessCheck over the requirement's fields
//	Precision    → PrecisionCheck per numeric-looking field, with bounds
//	               from the realizing constraint component
//	Accuracy     → AccuracyCheck (email pattern) for *email* fields
//
// Metadata-driven requirements (Traceability, Confidentiality) switch on
// the corresponding metadata capture and authorization.
func BuildFromDQSR(m *uml.Model) (*Enforcer, error) {
	reqClass, ok := m.Metamodel().FindClass("SoftwareRequirement")
	if !ok {
		return nil, fmt.Errorf("dqruntime: model %q is not a DQSR model", m.Name())
	}
	e := &Enforcer{
		validator: NewValidator(m.Name() + " validator"),
		store:     NewMetadataStore(),
		dqModel:   iso25012.NewDQModel(m.Name() + " DQ model"),
	}
	for _, req := range m.Model.AllInstances(reqClass) {
		dim := iso25012.Characteristic(req.GetString("dimension"))
		if !iso25012.IsValid(string(dim)) {
			return nil, fmt.Errorf("dqruntime: requirement %q has unknown dimension %q",
				req.GetString("title"), dim)
		}
		summary := RequirementSummary{
			ID:          req.GetInt("id"),
			Title:       req.GetString("title"),
			Dimension:   dim,
			Description: req.GetString("description"),
		}
		fields := stringList(req.GetList("fields"))
		switch dim {
		case iso25012.Completeness:
			summary.Mechanism = "validator"
			e.validator.Add(CompletenessCheck{Required: fields})
		case iso25012.Precision:
			summary.Mechanism = "validator"
			lower, upper, found := boundsFromComponents(req)
			if !found {
				lower, upper = 0, 10
			}
			perField := fieldBoundsFromComponents(req)
			for _, f := range fields {
				if !looksNumeric(f) {
					continue
				}
				lo, hi := lower, upper
				if fb, ok := perField[f]; ok {
					lo, hi = fb[0], fb[1]
				}
				e.validator.Add(PrecisionCheck{Field: f, Lower: lo, Upper: hi, Optional: true})
			}
		case iso25012.Accuracy:
			summary.Mechanism = "validator"
			for _, f := range fields {
				if strings.Contains(f, "email") {
					e.validator.Add(AccuracyCheck{Field: f, Pattern: EmailPattern, Optional: true})
				}
			}
		case iso25012.Traceability:
			summary.Mechanism = "metadata"
			e.traceability = true
		case iso25012.Confidentiality:
			summary.Mechanism = "metadata"
			e.confidentiality = true
		default:
			// Other characteristics are recorded in the DQ model but have no
			// generic runtime realization; applications add custom checks.
			summary.Mechanism = "custom"
		}
		// Constraint components may carry an explicit OCL predicate
		// ("ocl=<expr>"); each becomes a compiled OCLCheck regardless of
		// dimension, upgrading custom requirements to validator-enforced.
		for _, expr := range oclFromComponents(req) {
			chk, err := NewOCLCheck(dim, expr)
			if err != nil {
				return nil, fmt.Errorf("dqruntime: requirement %q: %w", summary.Title, err)
			}
			e.validator.Add(chk)
			if summary.Mechanism == "custom" {
				summary.Mechanism = "validator"
			}
		}
		if err := e.dqModel.Require(dim, 1.0); err != nil {
			return nil, err
		}
		e.requirements = append(e.requirements, summary)
	}
	return e, nil
}

// boundsFromComponents scans the requirement's realizing constraint
// components for lower_bound= / upper_bound= attributes. Reversed bounds
// (lower > upper) are treated as an authoring slip and swapped — a check
// that can never pass helps nobody.
func boundsFromComponents(req *metamodel.Object) (lower, upper int64, found bool) {
	for _, comp := range req.GetRefs("realizedBy") {
		if comp.GetString("kind") != "constraint" {
			continue
		}
		for _, a := range stringList(comp.GetList("attributes")) {
			if v, ok := strings.CutPrefix(a, "lower_bound="); ok {
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					lower, found = n, true
				}
			}
			if v, ok := strings.CutPrefix(a, "upper_bound="); ok {
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					upper, found = n, true
				}
			}
		}
	}
	if found && lower > upper {
		lower, upper = upper, lower
	}
	return lower, upper, found
}

// oclFromComponents collects "ocl=" attribute payloads from the
// requirement's realizing constraint components, in model order.
func oclFromComponents(req *metamodel.Object) []string {
	var out []string
	for _, comp := range req.GetRefs("realizedBy") {
		if comp.GetString("kind") != "constraint" {
			continue
		}
		for _, a := range stringList(comp.GetList("attributes")) {
			if expr, ok := strings.CutPrefix(a, "ocl="); ok && strings.TrimSpace(expr) != "" {
				out = append(out, expr)
			}
		}
	}
	return out
}

// fieldBoundsFromComponents parses per-field range payloads of the form
// "field in [lo,hi]" from the requirement's constraint components — the
// shape the case study's DQConstraint carries ("overall_evaluation in
// [-3,3]", "reviewer_confidence in [0,5]").
func fieldBoundsFromComponents(req *metamodel.Object) map[string][2]int64 {
	out := map[string][2]int64{}
	for _, comp := range req.GetRefs("realizedBy") {
		if comp.GetString("kind") != "constraint" {
			continue
		}
		for _, a := range stringList(comp.GetList("attributes")) {
			field, lo, hi, ok := parseRangePayload(a)
			if ok {
				out[field] = [2]int64{lo, hi}
			}
		}
	}
	return out
}

// parseRangePayload parses "field in [lo,hi]". A blank field name or a
// non-numeric bound rejects the payload; reversed bounds are swapped.
func parseRangePayload(s string) (field string, lo, hi int64, ok bool) {
	field, rest, found := strings.Cut(s, " in [")
	if !found || !strings.HasSuffix(rest, "]") {
		return "", 0, 0, false
	}
	field = strings.TrimSpace(field)
	if field == "" {
		return "", 0, 0, false
	}
	rest = strings.TrimSuffix(rest, "]")
	loStr, hiStr, found := strings.Cut(rest, ",")
	if !found {
		return "", 0, 0, false
	}
	lo, err1 := strconv.ParseInt(strings.TrimSpace(loStr), 10, 64)
	hi, err2 := strconv.ParseInt(strings.TrimSpace(hiStr), 10, 64)
	if err1 != nil || err2 != nil {
		return "", 0, 0, false
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return field, lo, hi, true
}

// looksNumeric reports whether a field name suggests a numeric score; the
// paper's case study scores are overall_evaluation and reviewer_confidence.
func looksNumeric(field string) bool {
	for _, hint := range []string{"score", "evaluation", "confidence", "rating", "count", "level"} {
		if strings.Contains(field, hint) {
			return true
		}
	}
	return false
}

func stringList(items []metamodel.Value) []string {
	out := make([]string, 0, len(items))
	for _, v := range items {
		if s, ok := v.(metamodel.String); ok {
			out = append(out, string(s))
		}
	}
	return out
}

// Validator exposes the assembled input validator.
func (e *Enforcer) Validator() *Validator { return e.validator }

// Store exposes the metadata store.
func (e *Enforcer) Store() *MetadataStore { return e.store }

// TraceabilityEnabled reports whether traceability metadata is captured.
func (e *Enforcer) TraceabilityEnabled() bool { return e.traceability }

// ConfidentialityEnabled reports whether confidentiality is enforced.
func (e *Enforcer) ConfidentialityEnabled() bool { return e.confidentiality }

// Requirements returns the requirement summaries in model order.
func (e *Enforcer) Requirements() []RequirementSummary {
	return append([]RequirementSummary(nil), e.requirements...)
}

// DQModel returns the required-levels model for assessments.
func (e *Enforcer) DQModel() *iso25012.DQModel { return e.dqModel }

// Instrument routes per-characteristic pass/fail counters from every check
// execution into the given metric registry (dq_checks_total, labeled by
// characteristic, check and result). A nil registry disables
// instrumentation; the uninstrumented path stays allocation-free.
func (e *Enforcer) Instrument(reg *obs.Registry) *Enforcer {
	e.reg = reg
	e.checkCounters = nil
	if reg == nil {
		return e
	}
	for _, c := range e.validator.Checks() {
		e.checkCounters = append(e.checkCounters, [2]*obs.Counter{
			e.checkCounter(c.Name(), c.Characteristic(), true),
			e.checkCounter(c.Name(), c.Characteristic(), false),
		})
	}
	return e
}

// checkCounter resolves the dq_checks_total series for one check outcome.
func (e *Enforcer) checkCounter(check string, ch iso25012.Characteristic, passed bool) *obs.Counter {
	result := "fail"
	if passed {
		result = "pass"
	}
	return e.reg.Counter("dq_checks_total",
		"DQ check executions, by ISO/IEC 25012 characteristic, check and result",
		obs.Labels{
			"characteristic": string(ch),
			"check":          check,
			"result":         result,
		})
}

// AttachObserver routes check-level attribution (outcome, score, latency,
// context label) from every CheckInputLabeled call into o. A nil observer
// detaches; without one the per-check clock reads are skipped entirely.
func (e *Enforcer) AttachObserver(o CheckObserver) *Enforcer {
	e.observer = o
	return e
}

// CheckInput validates user input against all assembled checks.
func (e *Enforcer) CheckInput(r Record) *Report {
	return e.CheckInputContext(context.Background(), r)
}

// CheckInputContext validates user input with observability: when the
// context carries an active span a child span "enforcer.check_input"
// records check count and failures, and when the enforcer is Instrumented
// every check result increments its pass/fail counter — the operational
// view the DQ measurement substrate (internal/metrics) complements with
// score time series.
func (e *Enforcer) CheckInputContext(ctx context.Context, r Record) *Report {
	return e.CheckInputLabeled(ctx, r, "")
}

// CheckInputLabeled is CheckInputContext with an attribution context
// label (a user role, workflow stage, tenant — whatever dimension the
// deployment wants its quality series broken down by). When an observer
// is attached every check execution is reported with its outcome, score,
// latency and the label; without one the path is identical to
// CheckInputContext.
func (e *Enforcer) CheckInputLabeled(ctx context.Context, r Record, contextLabel string) *Report {
	_, span := obs.StartSpan(ctx, "enforcer.check_input")
	rep := &Report{}
	if e.observer != nil {
		e.validator.ValidateObserved(r, rep, func(res *CheckResult, seconds float64) {
			e.observer.ObserveCheck(CheckObservation{
				Check:          res.Check,
				Characteristic: res.Characteristic,
				Context:        contextLabel,
				Score:          res.Score,
				Passed:         res.Passed,
				Seconds:        seconds,
			})
		})
	} else {
		e.validator.ValidateInto(r, rep)
	}
	if e.reg != nil {
		for i, res := range rep.Results {
			if i < len(e.checkCounters) {
				// Results are in validator check order; use the counter
				// pair cached at Instrument time.
				if res.Passed {
					e.checkCounters[i][0].Inc()
				} else {
					e.checkCounters[i][1].Inc()
				}
				continue
			}
			// Check added after Instrument: resolve through the registry.
			e.checkCounter(res.Check, res.Characteristic, res.Passed).Inc()
		}
	}
	if span != nil {
		span.SetAttr("checks", len(rep.Results))
		if failed := len(rep.Failures()); failed > 0 {
			span.SetAttr("failed", failed)
		}
		span.End()
	}
	return rep
}

// OnStore captures metadata for an initial write, honoring the enabled
// requirements: no-ops when neither traceability nor confidentiality was
// required.
func (e *Enforcer) OnStore(key, user string, level int, availableTo []string) {
	if !e.traceability && !e.confidentiality {
		return
	}
	if !e.confidentiality {
		level, availableTo = 0, nil
	}
	e.store.RecordStore(key, user, level, availableTo)
}

// OnModify captures metadata for a change.
func (e *Enforcer) OnModify(key, user string) {
	if e.traceability || e.confidentiality {
		e.store.RecordModify(key, user)
	}
}

// CanAccess enforces confidentiality; it allows everything when
// confidentiality was not required.
func (e *Enforcer) CanAccess(key, user string, userLevel int) bool {
	if !e.confidentiality {
		return true
	}
	return e.store.Authorize(key, user, userLevel)
}

// Assess measures a record against the DQ model: validator scores for
// validation-driven characteristics, and full marks for metadata-driven
// ones when their machinery is enabled (the system guarantees them).
func (e *Enforcer) Assess(r Record) []iso25012.Assessment {
	scores := e.CheckInput(r).Scores()
	if e.traceability {
		scores[iso25012.Traceability] = 1
	}
	if e.confidentiality {
		scores[iso25012.Confidentiality] = 1
	}
	return e.dqModel.Assess(scores)
}
