package dqruntime

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func fixedClock(start time.Time) func() time.Time {
	t := start
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Second)
		return t
	}
}

func TestMetadataStoreTraceability(t *testing.T) {
	s := NewMetadataStore()
	start := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	s.SetClock(fixedClock(start))

	s.RecordStore("review/1", "alice", 2, []string{"bob"})
	s.RecordModify("review/1", "carol")

	md, ok := s.Get("review/1")
	if !ok {
		t.Fatal("metadata missing")
	}
	if md.StoredBy != "alice" || md.LastModifiedBy != "carol" {
		t.Fatalf("metadata = %+v", md)
	}
	if !md.LastModifiedDate.After(md.StoredDate) {
		t.Fatal("modification date should advance")
	}
	if md.SecurityLevel != 2 || len(md.AvailableTo) != 1 || md.AvailableTo[0] != "bob" {
		t.Fatalf("confidentiality metadata = %+v", md)
	}

	audit := s.Audit("review/1")
	if len(audit) != 2 || audit[0].Action != ActionStore || audit[1].Action != ActionModify {
		t.Fatalf("audit = %v", audit)
	}
	if audit[0].String() == "" {
		t.Fatal("audit entry String empty")
	}
}

func TestMetadataStoreGetCopies(t *testing.T) {
	s := NewMetadataStore()
	s.RecordStore("k", "u", 1, []string{"x"})
	md, _ := s.Get("k")
	md.AvailableTo[0] = "mutated"
	md2, _ := s.Get("k")
	if md2.AvailableTo[0] != "x" {
		t.Fatal("Get leaked internal slice")
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("phantom metadata")
	}
}

func TestAuthorizeConfidentiality(t *testing.T) {
	s := NewMetadataStore()
	s.RecordStore("review/1", "alice", 3, []string{"bob"})

	cases := []struct {
		user  string
		level int
		want  bool
	}{
		{"alice", 0, true},  // owner always reads
		{"bob", 0, true},    // explicitly available
		{"carol", 3, true},  // sufficient clearance
		{"carol", 2, false}, // insufficient clearance
		{"dave", 0, false},
	}
	for _, c := range cases {
		if got := s.Authorize("review/1", c.user, c.level); got != c.want {
			t.Errorf("Authorize(%s, %d) = %v, want %v", c.user, c.level, got, c.want)
		}
	}
	// Unknown record denied and audited.
	if s.Authorize("ghost", "alice", 99) {
		t.Fatal("unknown record authorized")
	}
	audit := s.Audit("review/1")
	denied := 0
	for _, e := range audit {
		if e.Action == ActionDenied {
			denied++
		}
	}
	if denied != 2 {
		t.Fatalf("denied entries = %d, want 2", denied)
	}
}

func TestModifyUnknownKeyStillAudited(t *testing.T) {
	s := NewMetadataStore()
	s.RecordModify("ghost", "alice")
	if _, ok := s.Get("ghost"); ok {
		t.Fatal("modify should not create metadata")
	}
	if len(s.Audit("ghost")) != 1 {
		t.Fatal("modify of unknown key not audited")
	}
}

func TestKeysAndLen(t *testing.T) {
	s := NewMetadataStore()
	s.RecordStore("b", "u", 0, nil)
	s.RecordStore("a", "u", 0, nil)
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := len(s.AuditAll()); got != 2 {
		t.Fatalf("audit all = %d", got)
	}
}

func TestMetadataStoreConcurrentUse(t *testing.T) {
	s := NewMetadataStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			key := fmt.Sprintf("rec/%d", n%4)
			user := fmt.Sprintf("user%d", n)
			s.RecordStore(key, user, n%3, nil)
			s.RecordModify(key, user)
			s.Authorize(key, user, 3)
			s.Get(key)
			s.Keys()
		}(i)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Fatalf("records = %d, want 4", s.Len())
	}
	// 16 stores + 16 modifies + 16 reads.
	if got := len(s.AuditAll()); got != 48 {
		t.Fatalf("audit = %d, want 48", got)
	}
}

func TestSetClockNilRestoresRealClock(t *testing.T) {
	s := NewMetadataStore()
	s.SetClock(nil)
	before := time.Now().Add(-time.Second)
	s.RecordStore("k", "u", 0, nil)
	md, _ := s.Get("k")
	if md.StoredDate.Before(before) {
		t.Fatal("real clock not in use")
	}
}
