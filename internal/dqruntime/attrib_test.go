package dqruntime_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	. "github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// recordingObserver captures every observation for assertion.
type recordingObserver struct {
	mu  sync.Mutex
	obs []CheckObservation
}

func (r *recordingObserver) ObserveCheck(co CheckObservation) {
	r.mu.Lock()
	r.obs = append(r.obs, co)
	r.mu.Unlock()
}

func caseStudyRecord() Record {
	return Record{
		"first_name":          "Grace",
		"last_name":           "Hopper",
		"email_address":       "grace@navy.mil",
		"overall_evaluation":  "2",
		"reviewer_confidence": "3",
	}
}

func TestCheckInputLabeledReportsEveryCheck(t *testing.T) {
	enf := buildEnforcer(t)
	rec := &recordingObserver{}
	enf.AttachObserver(rec)

	bad := caseStudyRecord()
	bad["overall_evaluation"] = "7"
	rep := enf.CheckInputLabeled(context.Background(), bad, "pc")

	if len(rec.obs) != len(rep.Results) {
		t.Fatalf("observed %d checks, report has %d", len(rec.obs), len(rep.Results))
	}
	var failures int
	for i, co := range rec.obs {
		res := rep.Results[i]
		if co.Check != res.Check || co.Characteristic != res.Characteristic ||
			co.Score != res.Score || co.Passed != res.Passed {
			t.Errorf("observation %d = %+v does not match result %+v", i, co, res)
		}
		if co.Context != "pc" {
			t.Errorf("observation %d context = %q, want pc", i, co.Context)
		}
		if co.Seconds < 0 {
			t.Errorf("observation %d has negative latency %g", i, co.Seconds)
		}
		if !co.Passed {
			failures++
		}
	}
	if failures != 1 {
		t.Errorf("observed %d failures, want 1 (the out-of-range evaluation)", failures)
	}

	// The observed path must produce the same report as the plain path.
	plain := buildEnforcer(t).CheckInput(bad)
	if len(plain.Results) != len(rep.Results) || plain.Passed() != rep.Passed() {
		t.Errorf("observed report diverges from plain: %+v vs %+v", rep, plain)
	}

	// Detaching stops the flow without breaking validation.
	enf.AttachObserver(nil)
	before := len(rec.obs)
	if rep := enf.CheckInput(caseStudyRecord()); !rep.Passed() {
		t.Fatal("validation broken after detach")
	}
	if len(rec.obs) != before {
		t.Error("detached observer still receiving observations")
	}
}

func TestSeriesObserverFeedsScoresAndLatency(t *testing.T) {
	enf := buildEnforcer(t)
	set := obs.NewSeriesSet(time.Minute, 4)
	reg := obs.NewRegistry()
	so := NewSeriesObserver(set, reg)
	enf.AttachObserver(so)
	if so.Scores() != set {
		t.Fatal("Scores accessor does not return the backing set")
	}

	bad := caseStudyRecord()
	bad["overall_evaluation"] = "7"
	enf.CheckInputLabeled(context.Background(), bad, "pc")
	enf.CheckInputLabeled(context.Background(), caseStudyRecord(), "chair")

	rep := set.Report("dq_score", 0)
	byKey := map[string]*obs.SeriesSnapshot{}
	for i := range rep.Series {
		s := &rep.Series[i]
		byKey[s.Labels["characteristic"]+"/"+s.Labels["context"]] = s
	}
	// The case study enforcer runs 1 completeness + 2 precision checks.
	precPC := byKey[string(iso25012.Precision)+"/pc"]
	if precPC == nil || precPC.Current == nil {
		t.Fatalf("missing Precision/pc series: %v", byKey)
	}
	if precPC.Current.Count != 2 || precPC.Current.Failures != 1 {
		t.Errorf("Precision/pc window = %+v, want 2 checks 1 failure", precPC.Current)
	}
	compChair := byKey[string(iso25012.Completeness)+"/chair"]
	if compChair == nil || compChair.Current == nil || compChair.Current.Failures != 0 {
		t.Errorf("Completeness/chair series wrong: %+v", compChair)
	}

	// Latency histograms register per check name.
	text := reg.PrometheusText()
	for _, want := range []string{
		`dq_check_seconds_count{check="check_completeness"} 2`,
		`dq_check_seconds_count{check="check_precision"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("latency exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSeriesObserverNilRegistrySkipsLatency(t *testing.T) {
	set := obs.NewSeriesSet(time.Minute, 4)
	so := NewSeriesObserver(set, nil)
	so.ObserveCheck(CheckObservation{
		Check:          "check_x",
		Characteristic: iso25012.Accuracy,
		Score:          0.5,
		Passed:         false,
		Seconds:        0.001,
	})
	rep := set.Report("dq_score", 0)
	if len(rep.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(rep.Series))
	}
	if rep.Series[0].Labels["context"] != "" {
		t.Errorf("empty context should stay empty, got %q", rep.Series[0].Labels["context"])
	}
	if rep.Series[0].Current == nil || rep.Series[0].Current.Failures != 1 {
		t.Errorf("failure not recorded: %+v", rep.Series[0].Current)
	}
}

// TestSeriesObserverConcurrent exercises the handle cache from many
// goroutines; meaningful under -race.
func TestSeriesObserverConcurrent(t *testing.T) {
	set := obs.NewSeriesSet(time.Minute, 4)
	so := NewSeriesObserver(set, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctxLabel := []string{"pc", "chair"}[g%2]
			for i := 0; i < 200; i++ {
				so.ObserveCheck(CheckObservation{
					Check:          "check_precision",
					Characteristic: iso25012.Precision,
					Context:        ctxLabel,
					Score:          1,
					Passed:         true,
					Seconds:        1e-6,
				})
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, s := range set.Report("dq_score", 0).Series {
		if s.Current != nil {
			total += s.Current.Count
		}
	}
	if total != 8*200 {
		t.Errorf("observations lost: %d, want %d", total, 8*200)
	}
}
