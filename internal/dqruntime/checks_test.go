package dqruntime

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/modeldriven/dqwebre/internal/iso25012"
)

func TestCompletenessCheck(t *testing.T) {
	c := CompletenessCheck{Required: []string{"a", "b", "c"}}
	full := Record{"a": "1", "b": "2", "c": "3"}
	res := c.Apply(full)
	if !res.Passed || res.Score != 1 {
		t.Fatalf("full record: %+v", res)
	}
	partial := Record{"a": "1", "b": "  ", "c": ""}
	res = c.Apply(partial)
	if res.Passed {
		t.Fatal("partial record passed")
	}
	if res.Score < 0.32 || res.Score > 0.34 {
		t.Fatalf("score = %v, want 1/3", res.Score)
	}
	if len(res.Details) != 2 {
		t.Fatalf("details = %v", res.Details)
	}
	// No required fields: vacuous pass.
	if res := (CompletenessCheck{}).Apply(Record{}); !res.Passed || res.Score != 1 {
		t.Fatal("empty requirement should pass")
	}
	if c.Name() != "check_completeness" || c.Characteristic() != iso25012.Completeness {
		t.Fatal("identity wrong")
	}
}

func TestPrecisionCheck(t *testing.T) {
	c := PrecisionCheck{Field: "overall_evaluation", Lower: -3, Upper: 3}
	cases := []struct {
		val  string
		pass bool
	}{
		{"0", true}, {"-3", true}, {"3", true},
		{"4", false}, {"-4", false}, {"2.5", false}, {"abc", false}, {"", false},
	}
	for _, tc := range cases {
		res := c.Apply(Record{"overall_evaluation": tc.val})
		if res.Passed != tc.pass {
			t.Errorf("value %q: passed=%v, want %v (%v)", tc.val, res.Passed, tc.pass, res.Details)
		}
	}
	// Optional blank passes.
	opt := PrecisionCheck{Field: "x", Lower: 0, Upper: 5, Optional: true}
	if res := opt.Apply(Record{}); !res.Passed {
		t.Fatal("optional blank should pass")
	}
	if c.Name() != "check_precision" || c.Characteristic() != iso25012.Precision {
		t.Fatal("identity wrong")
	}
}

func TestAccuracyCheck(t *testing.T) {
	c := AccuracyCheck{Field: "email_address", Pattern: EmailPattern}
	if res := c.Apply(Record{"email_address": "reviewer@example.org"}); !res.Passed {
		t.Fatalf("valid email failed: %v", res.Details)
	}
	for _, bad := range []string{"not-an-email", "a@b", "@x.y", "a b@c.d", ""} {
		if res := c.Apply(Record{"email_address": bad}); res.Passed {
			t.Errorf("bad email %q passed", bad)
		}
	}
	opt := AccuracyCheck{Field: "email_address", Pattern: EmailPattern, Optional: true}
	if res := opt.Apply(Record{}); !res.Passed {
		t.Fatal("optional blank should pass")
	}
	// Nil pattern never passes non-blank values.
	nilP := AccuracyCheck{Field: "x"}
	if res := nilP.Apply(Record{"x": "v"}); res.Passed {
		t.Fatal("nil pattern passed")
	}
}

func TestConsistencyCheck(t *testing.T) {
	c := ConsistencyCheck{
		Rule: "confidence requires evaluation",
		Predicate: func(r Record) bool {
			return !(r["reviewer_confidence"] != "" && r["overall_evaluation"] == "")
		},
	}
	if res := c.Apply(Record{"reviewer_confidence": "4", "overall_evaluation": "2"}); !res.Passed {
		t.Fatal("consistent record failed")
	}
	res := c.Apply(Record{"reviewer_confidence": "4"})
	if res.Passed {
		t.Fatal("inconsistent record passed")
	}
	if !strings.Contains(res.Details[0], "confidence requires evaluation") {
		t.Fatalf("details = %v", res.Details)
	}
	// Nil predicate is vacuously consistent.
	if res := (ConsistencyCheck{}).Apply(Record{}); !res.Passed {
		t.Fatal("nil predicate failed")
	}
}

func TestCurrentnessCheck(t *testing.T) {
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	c := CurrentnessCheck{
		Field:  "last_modified_date",
		MaxAge: 24 * time.Hour,
		Now:    func() time.Time { return now },
	}
	fresh := now.Add(-time.Hour).Format(time.RFC3339)
	if res := c.Apply(Record{"last_modified_date": fresh}); !res.Passed {
		t.Fatalf("fresh failed: %v", res.Details)
	}
	stale := now.Add(-48 * time.Hour).Format(time.RFC3339)
	if res := c.Apply(Record{"last_modified_date": stale}); res.Passed {
		t.Fatal("stale passed")
	}
	if res := c.Apply(Record{"last_modified_date": "not-a-date"}); res.Passed {
		t.Fatal("garbage date passed")
	}
	if res := c.Apply(Record{}); res.Passed {
		t.Fatal("blank non-optional passed")
	}
	opt := c
	opt.Optional = true
	if res := opt.Apply(Record{}); !res.Passed {
		t.Fatal("blank optional failed")
	}

	// Future timestamps: tolerated within MaxSkew, rejected beyond it — a
	// timestamp a year ahead is not "current" no matter how small MaxAge's
	// age computation makes it.
	drift := now.Add(2 * time.Minute).Format(time.RFC3339)
	if res := c.Apply(Record{"last_modified_date": drift}); !res.Passed {
		t.Fatalf("within-skew future failed: %v", res.Details)
	}
	future := now.Add(365 * 24 * time.Hour).Format(time.RFC3339)
	res := c.Apply(Record{"last_modified_date": future})
	if res.Passed {
		t.Fatal("far-future timestamp passed")
	}
	if !strings.Contains(res.Details[0], "in the future") {
		t.Fatalf("details = %v", res.Details)
	}
	strict := c
	strict.MaxSkew = -1
	if res := strict.Apply(Record{"last_modified_date": drift}); res.Passed {
		t.Fatal("future timestamp passed with no skew tolerance")
	}
	loose := c
	loose.MaxSkew = time.Hour
	if res := loose.Apply(Record{"last_modified_date": drift}); !res.Passed {
		t.Fatalf("within custom skew failed: %v", res.Details)
	}
}

func TestValidatorReport(t *testing.T) {
	v := NewValidator("review",
		CompletenessCheck{Required: []string{"first_name", "overall_evaluation"}},
		PrecisionCheck{Field: "overall_evaluation", Lower: -3, Upper: 3},
	)
	good := Record{"first_name": "Ada", "overall_evaluation": "2"}
	rep := v.Validate(good)
	if !rep.Passed() || len(rep.Failures()) != 0 {
		t.Fatalf("good record failed: %+v", rep.Results)
	}
	scores := rep.Scores()
	if scores[iso25012.Completeness] != 1 || scores[iso25012.Precision] != 1 {
		t.Fatalf("scores = %v", scores)
	}

	bad := Record{"first_name": "", "overall_evaluation": "9"}
	rep = v.Validate(bad)
	if rep.Passed() || len(rep.Failures()) != 2 {
		t.Fatalf("bad record: %+v", rep.Results)
	}
	scores = rep.Scores()
	if scores[iso25012.Completeness] != 0.5 {
		t.Fatalf("completeness = %v", scores[iso25012.Completeness])
	}
	if scores[iso25012.Precision] != 0 {
		t.Fatalf("precision = %v", scores[iso25012.Precision])
	}
	if v.Name() != "review" || len(v.Checks()) != 2 {
		t.Fatal("validator identity wrong")
	}
	if !strings.Contains(rep.Failures()[0].String(), "FAIL") {
		t.Fatal("result String should mark failures")
	}
}

// TestScoresTakeWorstCheck: multiple checks on the same characteristic
// aggregate by minimum.
func TestScoresTakeWorstCheck(t *testing.T) {
	v := NewValidator("v",
		PrecisionCheck{Field: "a", Lower: 0, Upper: 5},
		PrecisionCheck{Field: "b", Lower: 0, Upper: 5},
	)
	rep := v.Validate(Record{"a": "3", "b": "99"})
	if got := rep.Scores()[iso25012.Precision]; got != 0 {
		t.Fatalf("min aggregation broken: %v", got)
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{"a": "1"}
	c := r.Clone()
	c["a"] = "2"
	if r["a"] != "1" {
		t.Fatal("clone aliased")
	}
}

// TestQuickCompletenessScoreBounds: for arbitrary required sets and
// records, the score is always in [0,1] and Passed iff score==1.
func TestQuickCompletenessScoreBounds(t *testing.T) {
	f := func(required []string, present map[string]string) bool {
		// Deduplicate required; blank names are legal field names here.
		c := CompletenessCheck{Required: required}
		res := c.Apply(Record(present))
		if res.Score < 0 || res.Score > 1 {
			return false
		}
		return res.Passed == (res.Score == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrecisionAgreesWithDirectComparison cross-checks the check
// against plain integer comparison.
func TestQuickPrecisionAgreesWithDirectComparison(t *testing.T) {
	f := func(v int32, lo, hi int16) bool {
		lower, upper := int64(lo), int64(hi)
		if lower > upper {
			lower, upper = upper, lower
		}
		c := PrecisionCheck{Field: "x", Lower: lower, Upper: upper}
		res := c.Apply(Record{"x": int64String(int64(v))})
		want := int64(v) >= lower && int64(v) <= upper
		return res.Passed == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func int64String(n int64) string {
	// strconv avoided deliberately to keep the helper independent of the
	// implementation under test.
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	if neg {
		return "-" + string(digits)
	}
	return string(digits)
}

func TestParseRangePayload(t *testing.T) {
	cases := []struct {
		in     string
		field  string
		lo, hi int64
		ok     bool
	}{
		{"overall_evaluation in [-3,3]", "overall_evaluation", -3, 3, true},
		{"reviewer_confidence in [0,5]", "reviewer_confidence", 0, 5, true},
		{"x in [ 1 , 9 ]", "x", 1, 9, true},
		{"no range here", "", 0, 0, false},
		{"x in [a,b]", "", 0, 0, false},
		{"x in [1]", "", 0, 0, false},
		{"x in [1,2", "", 0, 0, false},
	}
	for _, c := range cases {
		field, lo, hi, ok := parseRangePayload(c.in)
		if ok != c.ok || field != c.field || lo != c.lo || hi != c.hi {
			t.Errorf("parseRangePayload(%q) = (%q,%d,%d,%v), want (%q,%d,%d,%v)",
				c.in, field, lo, hi, ok, c.field, c.lo, c.hi, c.ok)
		}
	}
}
