package dqruntime

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/ocl"
)

// OCLCheck evaluates an OCL boolean expression over a record, with the
// record's fields bound as OCL variables. It is the generic realization of
// DQSR constraint components that carry an explicit OCL predicate (an
// "ocl=" attribute) instead of one of the fixed-shape payloads the other
// checks parse. The expression is compiled once, at construction, through
// the shared program cache; Apply binds field values into a pooled frame,
// so steady-state evaluation performs no per-record parsing or compilation.
// ApplyBatch is the vectorized sibling: one reused frame sweeps a whole
// column batch through Program.EvalBoolBatch, with field columns boxed
// once per batch.
type OCLCheck struct {
	characteristic iso25012.Characteristic
	prog           *ocl.Program
	// fields are the expression's free variables, bound from the record on
	// every Apply. A field absent from the record binds as OCL null, which
	// the expression can test with oclIsUndefined().
	fields []string
	// slots are the frame slots of fields, in field order.
	slots []int
	env   *ocl.Env
	// failDetail is the shared "violates: <src>" details slice — the
	// verdict for every plain (error-free) failure, allocated once.
	failDetail []string
	// scratch pools the per-batch binding and verdict buffers, since one
	// check instance runs on many workers concurrently.
	scratch sync.Pool
}

// oclBatchScratch is one worker's reusable ApplyBatch state.
type oclBatchScratch struct {
	cols     []ocl.BoundColumn
	verdicts []ocl.BoolResult
}

// NewOCLCheck compiles expr and derives the record fields it reads from the
// expression's free variables. Every field is bound on every evaluation
// (absent ones as null), so the program compiles under AssumeBound and
// benefits from cost-ordered conjunctions.
func NewOCLCheck(ch iso25012.Characteristic, expr string) (*OCLCheck, error) {
	parsed, err := ocl.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("dqruntime: OCL check %q: %w", expr, err)
	}
	fields := ocl.FreeVars(parsed)
	prog, err := ocl.CompileString(expr, ocl.CompileOptions{Vars: fields, AssumeBound: true})
	if err != nil {
		return nil, fmt.Errorf("dqruntime: OCL check %q: %w", expr, err)
	}
	slots := make([]int, len(fields))
	for i, f := range fields {
		slots[i], _ = prog.Slot(f)
	}
	return &OCLCheck{
		characteristic: ch,
		prog:           prog,
		fields:         fields,
		slots:          slots,
		env:            &ocl.Env{},
		failDetail:     []string{"violates: " + prog.Source()},
	}, nil
}

// Name returns "check_ocl".
func (*OCLCheck) Name() string { return "check_ocl" }

// Characteristic returns the characteristic the check was built for.
func (c *OCLCheck) Characteristic() iso25012.Characteristic { return c.characteristic }

// Expression returns the compiled OCL source.
func (c *OCLCheck) Expression() string { return c.prog.Source() }

// Fields returns the record fields the expression reads, sorted.
func (c *OCLCheck) Fields() []string { return append([]string(nil), c.fields...) }

// Apply binds the record's fields and evaluates the predicate. A non-Boolean
// result or an evaluation error fails the check with the diagnostic in
// Details — a constraint that cannot be evaluated has not been satisfied.
func (c *OCLCheck) Apply(r Record) CheckResult {
	res := CheckResult{Check: c.Name(), Characteristic: c.characteristic}
	fr := c.prog.NewFrame(c.env)
	defer fr.Release()
	for i, f := range c.fields {
		fr.SetSlot(c.slots[i], recordOCLValue(r[f]))
	}
	ok, err := fr.EvalBool()
	if err != nil {
		res.Details = []string{fmt.Sprintf("%s: %v", c.prog.Source(), err)}
		return res
	}
	if !ok {
		res.Details = c.failDetail
		return res
	}
	res.Passed, res.Score = true, 1
	return res
}

// ApplyBatch evaluates the predicate over every row with one reused frame.
// Field columns bind their memoized boxed OCL values; fields no column
// carries bind a shared all-null column, exactly like the row path's
// absent-field null.
func (c *OCLCheck) ApplyBatch(b *ColumnBatch, out *ColumnResult) {
	rows := b.Rows()
	if rows == 0 {
		return
	}
	sc, _ := c.scratch.Get().(*oclBatchScratch)
	if sc == nil {
		sc = &oclBatchScratch{}
	}
	defer c.scratch.Put(sc)
	sc.cols = sc.cols[:0]
	for i, f := range c.fields {
		vals := b.NullValues()
		if col := b.Col(f); col != nil {
			vals = col.OCLValues()
		}
		sc.cols = append(sc.cols, ocl.BoundColumn{Slot: c.slots[i], Values: vals})
	}
	if cap(sc.verdicts) < rows {
		sc.verdicts = make([]ocl.BoolResult, rows)
	}
	verdicts := sc.verdicts[:rows]
	c.prog.EvalBoolBatch(c.env, sc.cols, verdicts)
	var lastErr error
	var lastErrDetail []string
	for r := range verdicts {
		v := &verdicts[r]
		if v.Err != nil {
			if lastErrDetail == nil || v.Err != lastErr {
				lastErr = v.Err
				lastErrDetail = []string{fmt.Sprintf("%s: %v", c.prog.Source(), v.Err)}
			}
			out.Fail(r, 0, lastErrDetail)
			continue
		}
		if !v.OK {
			out.Fail(r, 0, c.failDetail)
		}
	}
}

// recordOCLValue lifts a raw form value into the OCL domain: blank → null,
// integers and reals → numbers, true/false → Boolean, anything else → the
// trimmed string. The byte-set precheck skips the strconv round-trip (and
// its error allocations) for values that cannot possibly be numeric.
func recordOCLValue(raw string) any {
	s := strings.TrimSpace(raw)
	switch {
	case s == "":
		return nil
	case s == "true":
		return true
	case s == "false":
		return false
	}
	if plausiblyNumeric(s) {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
	}
	return s
}
