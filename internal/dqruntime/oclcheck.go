package dqruntime

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/ocl"
)

// OCLCheck evaluates an OCL boolean expression over a record, with the
// record's fields bound as OCL variables. It is the generic realization of
// DQSR constraint components that carry an explicit OCL predicate (an
// "ocl=" attribute) instead of one of the fixed-shape payloads the other
// checks parse. The expression is compiled once, at construction, through
// the shared program cache; Apply binds field values into a pooled frame,
// so steady-state evaluation performs no per-record parsing or compilation.
type OCLCheck struct {
	characteristic iso25012.Characteristic
	prog           *ocl.Program
	// fields are the expression's free variables, bound from the record on
	// every Apply. A field absent from the record binds as OCL null, which
	// the expression can test with oclIsUndefined().
	fields []string
	env    *ocl.Env
}

// NewOCLCheck compiles expr and derives the record fields it reads from the
// expression's free variables.
func NewOCLCheck(ch iso25012.Characteristic, expr string) (*OCLCheck, error) {
	parsed, err := ocl.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("dqruntime: OCL check %q: %w", expr, err)
	}
	fields := ocl.FreeVars(parsed)
	prog, err := ocl.CompileString(expr, ocl.CompileOptions{Vars: fields})
	if err != nil {
		return nil, fmt.Errorf("dqruntime: OCL check %q: %w", expr, err)
	}
	return &OCLCheck{
		characteristic: ch,
		prog:           prog,
		fields:         fields,
		env:            &ocl.Env{},
	}, nil
}

// Name returns "check_ocl".
func (*OCLCheck) Name() string { return "check_ocl" }

// Characteristic returns the characteristic the check was built for.
func (c *OCLCheck) Characteristic() iso25012.Characteristic { return c.characteristic }

// Expression returns the compiled OCL source.
func (c *OCLCheck) Expression() string { return c.prog.Source() }

// Fields returns the record fields the expression reads, sorted.
func (c *OCLCheck) Fields() []string { return append([]string(nil), c.fields...) }

// Apply binds the record's fields and evaluates the predicate. A non-Boolean
// result or an evaluation error fails the check with the diagnostic in
// Details — a constraint that cannot be evaluated has not been satisfied.
func (c *OCLCheck) Apply(r Record) CheckResult {
	res := CheckResult{Check: c.Name(), Characteristic: c.characteristic}
	fr := c.prog.NewFrame(c.env)
	defer fr.Release()
	for _, f := range c.fields {
		fr.SetVar(f, recordOCLValue(r[f]))
	}
	ok, err := fr.EvalBool()
	if err != nil {
		res.Details = []string{fmt.Sprintf("%s: %v", c.prog.Source(), err)}
		return res
	}
	if !ok {
		res.Details = []string{"violates: " + c.prog.Source()}
		return res
	}
	res.Passed, res.Score = true, 1
	return res
}

// recordOCLValue lifts a raw form value into the OCL domain: blank → null,
// integers and reals → numbers, true/false → Boolean, anything else → the
// trimmed string.
func recordOCLValue(raw string) any {
	s := strings.TrimSpace(raw)
	switch {
	case s == "":
		return nil
	case s == "true":
		return true
	case s == "false":
		return false
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
