package dqruntime_test

import (
	"testing"

	. "github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// buildEnforcer runs the whole pipeline of the paper on the case study:
// requirements model → DQSR model → runtime enforcer.
func buildEnforcer(t testing.TB) *Enforcer {
	t.Helper()
	e := easychair.MustBuildModel()
	dqsr, _, err := transform.RunDQR2DQSR(e.Model)
	if err != nil {
		t.Fatal(err)
	}
	enf, err := BuildFromDQSR(dqsr)
	if err != nil {
		t.Fatal(err)
	}
	return enf
}

func TestBuildFromDQSRAssemblesRequirements(t *testing.T) {
	enf := buildEnforcer(t)
	reqs := enf.Requirements()
	if len(reqs) != 4 {
		t.Fatalf("requirements = %d, want 4", len(reqs))
	}
	mech := map[iso25012.Characteristic]string{}
	for _, r := range reqs {
		mech[r.Dimension] = r.Mechanism
		if r.Title == "" || r.Description == "" || r.ID == 0 {
			t.Errorf("incomplete summary: %+v", r)
		}
	}
	if mech[iso25012.Completeness] != "validator" || mech[iso25012.Precision] != "validator" {
		t.Errorf("validation mechanisms = %v", mech)
	}
	if mech[iso25012.Traceability] != "metadata" || mech[iso25012.Confidentiality] != "metadata" {
		t.Errorf("metadata mechanisms = %v", mech)
	}
	if !enf.TraceabilityEnabled() || !enf.ConfidentialityEnabled() {
		t.Fatal("metadata machinery not enabled")
	}
	if enf.DQModel().Len() != 4 {
		t.Fatalf("DQ model has %d characteristics", enf.DQModel().Len())
	}
	// Checks: 1 completeness + 2 precision (the two numeric score fields).
	if got := len(enf.Validator().Checks()); got != 3 {
		t.Fatalf("checks = %d, want 3", got)
	}
}

func TestEnforcerValidatesTheCaseStudyRecord(t *testing.T) {
	enf := buildEnforcer(t)
	good := Record{
		"first_name":          "Grace",
		"last_name":           "Hopper",
		"email_address":       "grace@navy.mil",
		"overall_evaluation":  "2",
		"reviewer_confidence": "3",
	}
	rep := enf.CheckInput(good)
	if !rep.Passed() {
		t.Fatalf("good record failed: %+v", rep.Failures())
	}

	// Missing a field: completeness fails.
	incomplete := good.Clone()
	delete(incomplete, "last_name")
	rep = enf.CheckInput(incomplete)
	if rep.Passed() {
		t.Fatal("incomplete record passed")
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Characteristic != iso25012.Completeness {
		t.Fatalf("failures = %+v", fails)
	}

	// Score out of the constraint's [-3,3]: precision fails.
	imprecise := good.Clone()
	imprecise["overall_evaluation"] = "7"
	rep = enf.CheckInput(imprecise)
	if rep.Passed() {
		t.Fatal("imprecise record passed")
	}
	fails = rep.Failures()
	if len(fails) != 1 || fails[0].Characteristic != iso25012.Precision {
		t.Fatalf("failures = %+v", fails)
	}
}

func TestEnforcerMetadataLifecycle(t *testing.T) {
	enf := buildEnforcer(t)
	enf.OnStore("review/42", "alice", 2, []string{"chair"})
	enf.OnModify("review/42", "alice")

	if !enf.CanAccess("review/42", "alice", 0) {
		t.Fatal("owner denied")
	}
	if !enf.CanAccess("review/42", "chair", 0) {
		t.Fatal("explicitly available user denied")
	}
	if enf.CanAccess("review/42", "stranger", 1) {
		t.Fatal("stranger with low clearance allowed")
	}
	if !enf.CanAccess("review/42", "pc-member", 2) {
		t.Fatal("sufficient clearance denied")
	}

	audit := enf.Store().Audit("review/42")
	// store + modify + 4 access decisions.
	if len(audit) != 6 {
		t.Fatalf("audit = %d entries", len(audit))
	}
	md, ok := enf.Store().Get("review/42")
	if !ok || md.StoredBy != "alice" {
		t.Fatalf("metadata = %+v", md)
	}
}

func TestEnforcerAssess(t *testing.T) {
	enf := buildEnforcer(t)
	good := Record{
		"first_name": "G", "last_name": "H", "email_address": "g@h.io",
		"overall_evaluation": "1", "reviewer_confidence": "4",
	}
	as := enf.Assess(good)
	if len(as) != 4 {
		t.Fatalf("assessments = %d", len(as))
	}
	for _, a := range as {
		if !a.Satisfied {
			t.Errorf("%s not satisfied: %+v", a.Characteristic, a)
		}
	}
	bad := Record{"first_name": "G"}
	as = enf.Assess(bad)
	satisfied := 0
	for _, a := range as {
		if a.Satisfied {
			satisfied++
		}
	}
	// Traceability and Confidentiality are system-guaranteed; Completeness
	// and Precision fail on the bad record... except precision checks are
	// Optional for blank fields, so only Completeness fails.
	if satisfied != 3 {
		t.Fatalf("satisfied = %d, want 3: %+v", satisfied, as)
	}
}

func TestEnforcerDisabledMetadataIsNoop(t *testing.T) {
	// A DQSR model with only a Completeness requirement: no metadata
	// machinery; access is unrestricted and OnStore is a no-op.
	m := uml.NewModel("mini", transform.DQSRMetamodel())
	req := m.MustCreate("SoftwareRequirement")
	req.MustSet("title", str("complete"))
	req.MustSet("dimension", str("Completeness"))
	req.MustAppend("fields", str("a"))
	enf, err := BuildFromDQSR(m)
	if err != nil {
		t.Fatal(err)
	}
	if enf.TraceabilityEnabled() || enf.ConfidentialityEnabled() {
		t.Fatal("metadata should be disabled")
	}
	enf.OnStore("k", "u", 5, nil)
	enf.OnModify("k", "u")
	if enf.Store().Len() != 0 {
		t.Fatal("OnStore should be a no-op")
	}
	if !enf.CanAccess("k", "anyone", 0) {
		t.Fatal("access should be unrestricted")
	}
}

func TestBuildFromDQSRRejectsNonDQSRModel(t *testing.T) {
	m := uml.NewModel("not-dqsr", uml.Metamodel())
	if _, err := BuildFromDQSR(m); err == nil {
		t.Fatal("non-DQSR model accepted")
	}
}

func TestBuildFromDQSRRejectsUnknownDimension(t *testing.T) {
	m := uml.NewModel("bad", transform.DQSRMetamodel())
	req := m.MustCreate("SoftwareRequirement")
	req.MustSet("title", str("x"))
	req.MustSet("dimension", str("Velocity"))
	if _, err := BuildFromDQSR(m); err == nil {
		t.Fatal("unknown dimension accepted")
	}
}

func TestConfidentialityOnlyStripsNothing(t *testing.T) {
	// Confidentiality without traceability still stores metadata with the
	// security level.
	m := uml.NewModel("conf", transform.DQSRMetamodel())
	req := m.MustCreate("SoftwareRequirement")
	req.MustSet("title", str("c"))
	req.MustSet("dimension", str("Confidentiality"))
	enf, err := BuildFromDQSR(m)
	if err != nil {
		t.Fatal(err)
	}
	enf.OnStore("k", "owner", 4, []string{"friend"})
	if enf.CanAccess("k", "rando", 3) {
		t.Fatal("level 3 < 4 allowed")
	}
	if !enf.CanAccess("k", "friend", 0) {
		t.Fatal("friend denied")
	}
}

// str is a test shorthand for metamodel string values.
func str(s string) metamodel.String { return metamodel.String(s) }

// TestPerFieldBoundsApplied verifies that the case study's per-field ranges
// are honored: reviewer_confidence accepts 5 (its own [0,5]) but rejects -1,
// while overall_evaluation uses [-3,3].
func TestPerFieldBoundsApplied(t *testing.T) {
	enf := buildEnforcer(t)
	base := Record{
		"first_name": "G", "last_name": "H", "email_address": "g@h.io",
		"overall_evaluation": "-3", "reviewer_confidence": "5",
	}
	if rep := enf.CheckInput(base); !rep.Passed() {
		t.Fatalf("edge values failed: %+v", rep.Failures())
	}
	neg := base.Clone()
	neg["reviewer_confidence"] = "-1"
	if rep := enf.CheckInput(neg); rep.Passed() {
		t.Fatal("confidence -1 passed despite [0,5]")
	}
}
