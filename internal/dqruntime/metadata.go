package dqruntime

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Metadata is the per-record DQ metadata the paper's «DQ_Metadata» elements
// persist: the Traceability set (stored_by, stored_date, last_modified_by,
// last_modified_date) and the Confidentiality set (security_level,
// available_to).
type Metadata struct {
	// StoredBy and StoredDate record the original write (Traceability).
	StoredBy   string
	StoredDate time.Time
	// LastModifiedBy and LastModifiedDate record the latest change.
	LastModifiedBy   string
	LastModifiedDate time.Time
	// SecurityLevel is the clearance required to read the record
	// (Confidentiality); higher means more restricted.
	SecurityLevel int
	// AvailableTo lists users always allowed to read the record, regardless
	// of level.
	AvailableTo []string
}

// AuditAction enumerates audited operations.
type AuditAction string

// Audited operations.
const (
	ActionStore  AuditAction = "store"
	ActionModify AuditAction = "modify"
	ActionRead   AuditAction = "read"
	ActionDenied AuditAction = "denied"
)

// AuditEntry is one line of the audit trail (Traceability: "an audit trail
// of access to the data and of any changes made to the data").
type AuditEntry struct {
	// Key identifies the record.
	Key string
	// Action performed.
	Action AuditAction
	// User performing it.
	User string
	// At is the entry timestamp.
	At time.Time
}

// String renders the entry for reports.
func (e AuditEntry) String() string {
	return fmt.Sprintf("%s %s %s by %s", e.At.Format(time.RFC3339), e.Action, e.Key, e.User)
}

// MetadataStore is a thread-safe store of per-record Metadata plus the
// audit trail — the runtime counterpart of the model's «DQ_Metadata»
// elements. Keys identify application records (e.g. "review/42").
type MetadataStore struct {
	mu    sync.RWMutex
	byKey map[string]*Metadata
	audit []AuditEntry
	clock func() time.Time
}

// NewMetadataStore creates an empty store using the real clock.
func NewMetadataStore() *MetadataStore {
	return &MetadataStore{byKey: make(map[string]*Metadata), clock: time.Now}
}

// SetClock injects a deterministic clock for tests; nil restores time.Now.
func (s *MetadataStore) SetClock(clock func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if clock == nil {
		clock = time.Now
	}
	s.clock = clock
}

// RecordStore captures the Traceability and Confidentiality metadata of an
// initial write.
func (s *MetadataStore) RecordStore(key, user string, level int, availableTo []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	s.byKey[key] = &Metadata{
		StoredBy:         user,
		StoredDate:       now,
		LastModifiedBy:   user,
		LastModifiedDate: now,
		SecurityLevel:    level,
		AvailableTo:      append([]string(nil), availableTo...),
	}
	s.audit = append(s.audit, AuditEntry{Key: key, Action: ActionStore, User: user, At: now})
}

// RecordModify captures a subsequent change; it is a no-op with an audit
// entry if the record was never stored (the caller's bug is still traced).
func (s *MetadataStore) RecordModify(key, user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	if md, ok := s.byKey[key]; ok {
		md.LastModifiedBy = user
		md.LastModifiedDate = now
	}
	s.audit = append(s.audit, AuditEntry{Key: key, Action: ActionModify, User: user, At: now})
}

// Get returns a copy of the record's metadata.
func (s *MetadataStore) Get(key string) (Metadata, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	md, ok := s.byKey[key]
	if !ok {
		return Metadata{}, false
	}
	out := *md
	out.AvailableTo = append([]string(nil), md.AvailableTo...)
	return out, true
}

// Authorize implements the Confidentiality requirement: a user may read the
// record when their clearance meets the record's security level, or when
// they are explicitly listed in AvailableTo, or when they stored it. The
// decision is always audited (read or denied). Unknown keys are denied.
func (s *MetadataStore) Authorize(key, user string, userLevel int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	md, ok := s.byKey[key]
	allowed := false
	if ok {
		switch {
		case md.StoredBy == user:
			allowed = true
		case userLevel >= md.SecurityLevel:
			allowed = true
		default:
			for _, u := range md.AvailableTo {
				if u == user {
					allowed = true
					break
				}
			}
		}
	}
	action := ActionRead
	if !allowed {
		action = ActionDenied
	}
	s.audit = append(s.audit, AuditEntry{Key: key, Action: action, User: user, At: now})
	return allowed
}

// Audit returns the audit entries for one key, oldest first.
func (s *MetadataStore) Audit(key string) []AuditEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []AuditEntry
	for _, e := range s.audit {
		if e.Key == key {
			out = append(out, e)
		}
	}
	return out
}

// AuditAll returns the whole audit trail, oldest first.
func (s *MetadataStore) AuditAll() []AuditEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]AuditEntry(nil), s.audit...)
}

// Keys returns the stored record keys in sorted order.
func (s *MetadataStore) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored records.
func (s *MetadataStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byKey)
}
