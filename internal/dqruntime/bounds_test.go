// Table-driven edge-case tests for the DQSR constraint-payload parsers.
// These live in the dqruntime package (not _test) because the helpers are
// unexported plumbing of BuildFromDQSR.
package dqruntime

import (
	"fmt"
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// boundsFixture is a minimal metamodel carrying just the shapes
// boundsFromComponents reads: a requirement with realizedBy components
// that have kind and attributes. Building it locally keeps these tests
// independent of the real DQSR metamodel's registration.
type boundsFixture struct {
	req  *metamodel.Class
	comp *metamodel.Class
}

func newBoundsFixture() *boundsFixture {
	p := metamodel.NewPackage("boundstest")
	str := p.AddDataType("String", metamodel.PrimString)
	comp := p.AddClass("Component")
	comp.AddProperty("kind", str, 1, 1)
	comp.AddProperty("attributes", str, 0, metamodel.Unbounded)
	req := p.AddClass("Requirement")
	req.AddRefs("realizedBy", comp)
	return &boundsFixture{req: req, comp: comp}
}

// requirement builds a requirement whose components are (kind, attributes)
// pairs.
func (f *boundsFixture) requirement(t *testing.T, comps ...[2]any) *metamodel.Object {
	t.Helper()
	req := metamodel.MustNewObject(f.req)
	for _, c := range comps {
		comp := metamodel.MustNewObject(f.comp)
		comp.MustSet("kind", metamodel.String(c[0].(string)))
		for _, a := range c[1].([]string) {
			comp.MustAppend("attributes", metamodel.String(a))
		}
		if err := req.AppendRef("realizedBy", comp); err != nil {
			t.Fatal(err)
		}
	}
	return req
}

func TestBoundsFromComponentsTable(t *testing.T) {
	f := newBoundsFixture()
	tests := []struct {
		name         string
		comps        [][2]any
		lower, upper int64
		found        bool
	}{
		{
			name:  "no components",
			comps: nil,
		},
		{
			name:  "plain bounds",
			comps: [][2]any{{"constraint", []string{"lower_bound=-3", "upper_bound=3"}}},
			lower: -3, upper: 3, found: true,
		},
		{
			name:  "reversed bounds are swapped",
			comps: [][2]any{{"constraint", []string{"lower_bound=5", "upper_bound=1"}}},
			lower: 1, upper: 5, found: true,
		},
		{
			name:  "non-numeric payloads are ignored",
			comps: [][2]any{{"constraint", []string{"lower_bound=abc", "upper_bound=xyz"}}},
		},
		{
			name:  "one numeric bound still counts as found",
			comps: [][2]any{{"constraint", []string{"lower_bound=abc", "upper_bound=7"}}},
			lower: 0, upper: 7, found: true,
		},
		{
			name:  "non-constraint components are skipped",
			comps: [][2]any{{"validator", []string{"lower_bound=1", "upper_bound=2"}}},
		},
		{
			name: "later constraint overrides earlier",
			comps: [][2]any{
				{"constraint", []string{"lower_bound=0", "upper_bound=10"}},
				{"constraint", []string{"lower_bound=2", "upper_bound=4"}},
			},
			lower: 2, upper: 4, found: true,
		},
		{
			name:  "unrelated attributes are ignored",
			comps: [][2]any{{"constraint", []string{"scope=review", "field in [1,2]"}}},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req := f.requirement(t, tc.comps...)
			lo, hi, found := boundsFromComponents(req)
			if lo != tc.lower || hi != tc.upper || found != tc.found {
				t.Fatalf("boundsFromComponents = (%d, %d, %v), want (%d, %d, %v)",
					lo, hi, found, tc.lower, tc.upper, tc.found)
			}
		})
	}
}

func TestParseRangePayloadTable(t *testing.T) {
	tests := []struct {
		in     string
		field  string
		lo, hi int64
		ok     bool
	}{
		{in: "overall_evaluation in [-3,3]", field: "overall_evaluation", lo: -3, hi: 3, ok: true},
		{in: "score in [ 0 , 5 ]", field: "score", lo: 0, hi: 5, ok: true},
		{in: "score in [5,0]", field: "score", lo: 0, hi: 5, ok: true}, // reversed bounds swapped
		{in: " in [1,2]"},                    // empty field name
		{in: "   in [1,2]"},                  // blank field name
		{in: "x in [a,b]"},                   // non-numeric bounds
		{in: "x in [1.5,2]"},                 // floats are not integers
		{in: "x in [1]"},                     // missing comma
		{in: "x in [1,2"},                    // unterminated bracket
		{in: "x in [1,2]]"},                  // trailing junk corrupts the hi bound
		{in: "x within [1,2]"},               // wrong keyword
		{in: ""},                             // empty payload
		{in: "lower_bound=3"},                // a bounds payload, not a range
		{in: "x in [9223372036854775808,9]"}, // lo overflows int64
		{in: "  padded   in [-1,1]", field: "padded", lo: -1, hi: 1, ok: true},
	}
	for _, tc := range tests {
		t.Run(fmt.Sprintf("%q", tc.in), func(t *testing.T) {
			field, lo, hi, ok := parseRangePayload(tc.in)
			if field != tc.field || lo != tc.lo || hi != tc.hi || ok != tc.ok {
				t.Fatalf("parseRangePayload(%q) = (%q, %d, %d, %v), want (%q, %d, %d, %v)",
					tc.in, field, lo, hi, ok, tc.field, tc.lo, tc.hi, tc.ok)
			}
		})
	}
}
