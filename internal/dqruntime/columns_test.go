// Parity coverage for the columnar layer: cell classification must agree
// with the row path's value lifting, RowView must reconstruct records
// faithfully, and ValidateBatch must produce — check for check, row for
// row — exactly the verdicts, scores and detail strings the per-record
// Apply path produces, across every stock check type (including the
// row-fallback ConsistencyCheck and the vectorized OCLCheck).
package dqruntime

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/modeldriven/dqwebre/internal/iso25012"
)

// cellValues are raw field values covering every classification branch:
// blank, padded, integer, float, bool, free text, timestamps, near-numeric
// strings that must survive the plausibility precheck.
var cellValues = []string{
	"", " ", "\t ", "abc", "42", " 17 ", "-8", "true", "false", " true ",
	"3.14", "1e3", "0x1p-2", "inf", "nan", "Infinity", "not-a-number",
	"9223372036854775808", "1_000", "a@b.co", "not@email",
	"2026-08-01T00:00:00Z", "1999-01-01T00:00:00Z", "2020-13-40",
	"2027-03-01T00:00:00Z", "2026-08-08T12:03:00Z", // future-dated: beyond / within MaxSkew
	"0", "6", "true-ish", "-", "+", ".",
}

// liftedEqual compares lifted OCL values, treating NaN as equal to NaN
// (both paths lift "nan" to the same NaN; reflect.DeepEqual would not).
func liftedEqual(a, b any) bool {
	if fa, ok := a.(float64); ok {
		if fb, ok := b.(float64); ok {
			return fa == fb || (math.IsNaN(fa) && math.IsNaN(fb))
		}
	}
	return reflect.DeepEqual(a, b)
}

func TestColumnClassificationMatchesRecordOCLValue(t *testing.T) {
	f := func(raw string) bool {
		var c Column
		c.reset("f")
		c.appendCell(raw)
		got := c.OCLValues()[0]
		want := recordOCLValue(raw)
		return liftedEqual(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatalf("classification property failed: %v", err)
	}
	for _, raw := range cellValues {
		var c Column
		c.reset("f")
		c.appendCell(raw)
		if got, want := c.OCLValues()[0], recordOCLValue(raw); !liftedEqual(got, want) {
			t.Fatalf("appendCell(%q) lifts to %#v, recordOCLValue gives %#v", raw, got, want)
		}
	}
}

// parityFields is the field universe the parity records draw from.
var parityFields = []string{"a", "b", "n", "opt", "email", "ts", "extra"}

// parityRecords builds deterministic pseudo-random records with missing
// fields, blanks and every value shape.
func parityRecords(n int) []Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]Record, n)
	for i := range recs {
		r := Record{}
		for _, f := range parityFields {
			if rng.Intn(4) == 0 {
				continue // field absent entirely
			}
			r[f] = cellValues[rng.Intn(len(cellValues))]
		}
		recs[i] = r
	}
	return recs
}

func parityValidator(t *testing.T) *Validator {
	t.Helper()
	oclChk, err := NewOCLCheck(iso25012.Consistency,
		"n.oclIsUndefined() or opt.oclIsUndefined() or n <= opt")
	if err != nil {
		t.Fatal(err)
	}
	fixedNow := func() time.Time {
		return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	}
	return NewValidator("parity",
		CompletenessCheck{Required: []string{"a", "b"}},
		PrecisionCheck{Field: "n", Lower: -3, Upper: 3},
		PrecisionCheck{Field: "opt", Lower: 0, Upper: 5, Optional: true},
		AccuracyCheck{Field: "email", Pattern: EmailPattern},
		CurrentnessCheck{Field: "ts", MaxAge: 365 * 24 * time.Hour, Now: fixedNow},
		ConsistencyCheck{Rule: "a differs from b", Predicate: func(r Record) bool {
			return r["a"] != r["b"] || r["a"] == ""
		}},
		oclChk,
	)
}

// TestValidateBatchMatchesRowApply is the core parity test: every check's
// batch verdicts must equal its per-record verdicts — passed, score and
// detail text — over randomized records.
func TestValidateBatchMatchesRowApply(t *testing.T) {
	v := parityValidator(t)
	recs := parityRecords(300)
	batch := &ColumnBatch{}
	batch.Columnarize(recs)
	rep := &BatchReport{}
	v.ValidateBatch(batch, rep)
	if rep.Rows() != len(recs) {
		t.Fatalf("rows = %d, want %d", rep.Rows(), len(recs))
	}
	checks := v.Checks()
	if len(rep.Results) != len(checks) {
		t.Fatalf("results = %d, want %d", len(rep.Results), len(checks))
	}
	for ci, c := range checks {
		col := &rep.Results[ci]
		if col.Check != c.Name() || col.Characteristic != c.Characteristic() {
			t.Fatalf("result %d labeled %s/%s, want %s/%s",
				ci, col.Check, col.Characteristic, c.Name(), c.Characteristic())
		}
		for r, rec := range recs {
			want := c.Apply(rec)
			if col.Passed[r] != want.Passed || col.Score[r] != want.Score {
				t.Fatalf("check %s row %d (rec %v): batch passed=%v score=%v, row passed=%v score=%v",
					c.Name(), r, rec, col.Passed[r], col.Score[r], want.Passed, want.Score)
			}
			if !detailsEqual(col.Details[r], want.Details) {
				t.Fatalf("check %s row %d (rec %v): batch details %q, row details %q",
					c.Name(), r, rec, col.Details[r], want.Details)
			}
		}
	}
	// Row roll-up must match too.
	legacy := &Report{}
	for r, rec := range recs {
		v.ValidateInto(rec, legacy)
		if rep.RowPassed(r) != legacy.Passed() {
			t.Fatalf("row %d: RowPassed=%v, Report.Passed=%v", r, rep.RowPassed(r), legacy.Passed())
		}
	}
}

func detailsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestValidateBatchReuse runs the same report through batches of different
// sizes and shapes, checking storage reuse leaks nothing between calls.
func TestValidateBatchReuse(t *testing.T) {
	v := parityValidator(t)
	rep := &BatchReport{}
	for _, n := range []int{50, 3, 120, 1} {
		recs := parityRecords(n)
		batch := &ColumnBatch{}
		batch.Columnarize(recs)
		v.ValidateBatch(batch, rep)
		for ci, c := range v.Checks() {
			col := &rep.Results[ci]
			for r, rec := range recs {
				want := c.Apply(rec)
				if col.Passed[r] != want.Passed || col.Score[r] != want.Score || !detailsEqual(col.Details[r], want.Details) {
					t.Fatalf("n=%d check %s row %d: batch (%v,%v,%q) vs row (%v,%v,%q)",
						n, c.Name(), r, col.Passed[r], col.Score[r], col.Details[r],
						want.Passed, want.Score, want.Details)
				}
			}
		}
	}
}

func TestRowViewReconstructsRecords(t *testing.T) {
	recs := parityRecords(64)
	batch := &ColumnBatch{}
	batch.Columnarize(recs)
	scratch := make(Record, 8)
	for i, rec := range recs {
		got := batch.RowView(i, scratch)
		if len(got) != len(rec) {
			t.Fatalf("row %d: view has %d fields, record has %d (%v vs %v)", i, len(got), len(rec), got, rec)
		}
		for k, v := range rec {
			if got[k] != v {
				t.Fatalf("row %d field %q: view %q, record %q", i, k, got[k], v)
			}
		}
	}
}

func TestSliceIntoViews(t *testing.T) {
	recs := parityRecords(100)
	batch := &ColumnBatch{}
	batch.Columnarize(recs)
	batch.WarmOCLValues()
	v := parityValidator(t)
	whole := &BatchReport{}
	v.ValidateBatch(batch, whole)
	view := &ColumnBatch{}
	rep := &BatchReport{}
	for lo := 0; lo < 100; lo += 33 {
		hi := lo + 33
		if hi > 100 {
			hi = 100
		}
		batch.SliceInto(view, lo, hi)
		if view.Rows() != hi-lo {
			t.Fatalf("view rows = %d, want %d", view.Rows(), hi-lo)
		}
		v.ValidateBatch(view, rep)
		for ci := range whole.Results {
			for r := 0; r < hi-lo; r++ {
				w := &whole.Results[ci]
				g := &rep.Results[ci]
				if g.Passed[r] != w.Passed[lo+r] || g.Score[r] != w.Score[lo+r] || !detailsEqual(g.Details[r], w.Details[lo+r]) {
					t.Fatalf("chunk [%d,%d) check %d row %d diverged from whole-batch run", lo, hi, ci, r)
				}
			}
		}
	}
}

func TestColumnBatchAbortRow(t *testing.T) {
	b := &ColumnBatch{}
	b.SetField("a", "1")
	b.EndRow()
	b.SetField("a", "2")
	b.SetField("b", "x")
	b.AbortRow()
	b.SetField("a", "3")
	b.EndRow()
	if b.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", b.Rows())
	}
	a := b.Col("a")
	if a.Raw[0] != "1" || a.Raw[1] != "3" {
		t.Fatalf("column a = %v, want [1 3]", a.Raw)
	}
	// Column b exists but is all-missing — equivalent to absent.
	if bCol := b.Col("b"); bCol != nil {
		for i, k := range bCol.Kinds {
			if k != CellMissing {
				t.Fatalf("b[%d] kind = %d, want missing", i, k)
			}
		}
	}
}

// TestBatchScheduleCostOrder pins the cost-ordered schedule: results stay
// at declared indices while evaluation order sorts by estimated cost.
func TestBatchScheduleCostOrder(t *testing.T) {
	v := parityValidator(t)
	rep := &BatchReport{}
	order := rep.orderFor(v.Checks())
	costs := make([]int, len(order))
	for i, idx := range order {
		costs[i] = checkCost(v.Checks()[idx])
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] < costs[i-1] {
			t.Fatalf("schedule %v has costs %v — not ascending", order, costs)
		}
	}
}

// TestOCLCheckApplyBatchSharedDetails checks the vectorized OCLCheck fail
// details are the shared slice (alloc-free) and byte-equal to the row path.
func TestOCLCheckApplyBatchSharedDetails(t *testing.T) {
	chk, err := NewOCLCheck(iso25012.Precision, "n >= 0")
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{{"n": "1"}, {"n": "-1"}, {"n": "-2"}, {"n": "x"}}
	batch := &ColumnBatch{}
	batch.Columnarize(recs)
	out := &ColumnResult{}
	out.reset(chk.Name(), chk.Characteristic(), batch.Rows())
	chk.ApplyBatch(batch, out)
	for r, rec := range recs {
		want := chk.Apply(rec)
		if out.Passed[r] != want.Passed || !detailsEqual(out.Details[r], want.Details) {
			t.Fatalf("row %d (%v): batch (%v,%q) vs row (%v,%q)",
				r, rec, out.Passed[r], out.Details[r], want.Passed, want.Details)
		}
	}
	if &out.Details[1][0] != &out.Details[2][0] {
		t.Fatal("plain failures do not share the precomputed detail slice")
	}
}
