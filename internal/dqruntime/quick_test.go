// Property-based tests for the validation runtime: whatever a web form
// throws at it, scores stay in [0,1], the per-characteristic roll-up is
// the minimum over that characteristic's checks, and validation is a pure
// function of the record's contents.
package dqruntime_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	. "github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
)

// randomRecord builds a record mixing the case-study field names (so the
// enforcer's checks actually engage) with arbitrary keys and values.
func randomRecord(rand *rand.Rand) Record {
	fields := []string{
		"first_name", "last_name", "email_address",
		"overall_evaluation", "reviewer_confidence",
	}
	values := []string{
		"", " ", "Grace", "grace@navy.mil", "not-an-email", "x@y",
		"-3", "0", "3", "7", "-99", "2.5", "NaN", "三", "\x00",
	}
	r := Record{}
	for _, f := range fields {
		if rand.Intn(4) == 0 {
			continue // leave some fields missing entirely
		}
		r[f] = values[rand.Intn(len(values))]
	}
	// A few arbitrary extra fields the checks ignore.
	for i := rand.Intn(3); i > 0; i-- {
		r[fmt.Sprintf("extra_%d", rand.Intn(10))] = values[rand.Intn(len(values))]
	}
	return r
}

func TestQuickScoresWithinUnitInterval(t *testing.T) {
	enf := buildEnforcer(t)
	f := func(seed int64) bool {
		r := randomRecord(rand.New(rand.NewSource(seed)))
		rep := enf.CheckInput(r)
		for _, res := range rep.Results {
			if res.Score < 0 || res.Score > 1 {
				t.Logf("record %v: check %s score %v", r, res.Check, res.Score)
				return false
			}
			if res.Passed && res.Score != 1 {
				t.Logf("record %v: passing check %s with score %v", r, res.Check, res.Score)
				return false
			}
		}
		for ch, s := range rep.Scores() {
			if s < 0 || s > 1 {
				t.Logf("record %v: characteristic %s score %v", r, ch, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScoresAreMinimumPerCharacteristic(t *testing.T) {
	enf := buildEnforcer(t)
	f := func(seed int64) bool {
		r := randomRecord(rand.New(rand.NewSource(seed)))
		rep := enf.CheckInput(r)
		want := map[iso25012.Characteristic]float64{}
		for _, res := range rep.Results {
			if cur, ok := want[res.Characteristic]; !ok || res.Score < cur {
				want[res.Characteristic] = res.Score
			}
		}
		got := rep.Scores()
		if !reflect.DeepEqual(got, want) {
			t.Logf("record %v: Scores() = %v, want min-fold %v", r, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValidateDeterministicAcrossClones(t *testing.T) {
	enf := buildEnforcer(t)
	v := enf.Validator()
	f := func(seed int64) bool {
		r := randomRecord(rand.New(rand.NewSource(seed)))
		clone := r.Clone()
		rep1 := v.Validate(r)
		rep2 := v.Validate(clone)
		if !reflect.DeepEqual(rep1, rep2) {
			t.Logf("record %v: reports diverge:\n%+v\n%+v", r, rep1, rep2)
			return false
		}
		// The cheap path must agree with the allocating path.
		into := &Report{}
		v.ValidateInto(clone, into)
		if !reflect.DeepEqual(rep1, into) {
			t.Logf("record %v: ValidateInto diverges:\n%+v\n%+v", r, rep1, into)
			return false
		}
		// Validation must not mutate its input.
		if !reflect.DeepEqual(r, clone) {
			t.Logf("record mutated: %v vs %v", r, clone)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
