package dqruntime

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// observeAll folds records into states round-robin — a deterministic stand-in
// for the engine's arbitrary chunk assignment — then merges and renders.
func observeAll(states []CheckState, recs []Record) CrossFinding {
	for i, r := range recs {
		states[i%len(states)].Observe(int64(i+1), r)
	}
	merged := states[0]
	for _, o := range states[1:] {
		merged.Merge(o)
	}
	return merged.Finding()
}

func TestUniquenessExact(t *testing.T) {
	c := UniquenessCheck{Fields: []string{"id"}}
	recs := []Record{
		{"id": "a"}, {"id": "b"}, {"id": "a"}, {"id": "c"}, {"id": "a"}, {"id": "b"},
	}
	f := observeAll(c.NewStates(3, 10), recs)
	if f.Records != 6 || f.Violations != 3 || f.Passed || f.Approximate {
		t.Fatalf("finding = %+v", f)
	}
	if want := float64(3) / 6; f.Score != want {
		t.Fatalf("score = %v, want %v", f.Score, want)
	}
	if len(f.Details) != 2 || !strings.Contains(f.Details[0], `"a" appears 3 times`) ||
		!strings.Contains(f.Details[1], `"b" appears 2 times`) {
		t.Fatalf("details = %v", f.Details)
	}
}

func TestUniquenessMultiField(t *testing.T) {
	c := UniquenessCheck{Fields: []string{"a", "b"}}
	recs := []Record{
		{"a": "x", "b": "1"}, {"a": "x", "b": "2"}, {"a": "x", "b": "1"},
	}
	f := observeAll(c.NewStates(2, 10), recs)
	if f.Violations != 1 {
		t.Fatalf("finding = %+v", f)
	}
	if !strings.Contains(f.Details[0], `"x, 1"`) {
		t.Fatalf("details = %v", f.Details)
	}
}

func TestUniquenessDetailsCapped(t *testing.T) {
	c := UniquenessCheck{Fields: []string{"id"}}
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{"id": fmt.Sprintf("k%02d", i)}, Record{"id": fmt.Sprintf("k%02d", i)})
	}
	f := observeAll(c.NewStates(2, 3), recs)
	if f.Violations != 10 {
		t.Fatalf("finding = %+v", f)
	}
	// 3 keys shown plus the "and N more" line.
	if len(f.Details) != 4 || !strings.Contains(f.Details[3], "7 more duplicated keys") {
		t.Fatalf("details = %v", f.Details)
	}
}

// TestUniquenessBloomDeterministic pins the switchover rule: past MaxExact
// distinct keys the finding is approximate, and — because Bloom bits union
// bitwise — identical for any shard count.
func TestUniquenessBloomDeterministic(t *testing.T) {
	c := UniquenessCheck{Fields: []string{"id"}, MaxExact: 8, BloomBits: 1 << 12}
	var recs []Record
	for i := 0; i < 200; i++ {
		recs = append(recs, Record{"id": fmt.Sprintf("key-%d", i%50)})
	}
	single := observeAll(c.NewStates(1, 5), recs)
	if !single.Approximate {
		t.Fatalf("expected approximate finding, got %+v", single)
	}
	if single.Records != 200 {
		t.Fatalf("records = %d", single.Records)
	}
	// The estimate must be in the ballpark of the true 50 distinct keys.
	distinct := single.Records - single.Violations
	if distinct < 40 || distinct > 60 {
		t.Fatalf("estimated %d distinct keys, true value 50", distinct)
	}
	for _, workers := range []int{2, 3, 8} {
		sharded := observeAll(c.NewStates(workers, 5), recs)
		if !reflect.DeepEqual(single, sharded) {
			t.Fatalf("workers=%d finding diverged:\n  single  %+v\n  sharded %+v", workers, single, sharded)
		}
	}
}

// TestUniquenessExactStaysExactWhenSharded pins the other side of the
// rule: a dataset under MaxExact distinct keys reports exactly, even when
// per-shard maps never individually approach the cap.
func TestUniquenessExactStaysExactWhenSharded(t *testing.T) {
	c := UniquenessCheck{Fields: []string{"id"}, MaxExact: 100}
	var recs []Record
	for i := 0; i < 180; i++ {
		recs = append(recs, Record{"id": fmt.Sprintf("key-%d", i%90)})
	}
	for _, workers := range []int{1, 4} {
		f := observeAll(c.NewStates(workers, 3), recs)
		if f.Approximate || f.Violations != 90 {
			t.Fatalf("workers=%d finding = %+v", workers, f)
		}
	}
}

// TestUniquenessPermutationProperty is the quick property the issue asks
// for: merged sharded state equals the single-shard result for any record
// permutation and any shard assignment.
func TestUniquenessPermutationProperty(t *testing.T) {
	prop := func(seed int64, nShards uint8, maxExact uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{"k": fmt.Sprintf("v%d", rng.Intn(30))}
		}
		c := UniquenessCheck{Fields: []string{"k"}, MaxExact: 5 + int(maxExact%40), BloomBits: 1 << 10}
		want := observeAll(c.NewStates(1, 4), recs)

		shuffled := append([]Record(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		states := c.NewStates(1+int(nShards%7), 4)
		for i, r := range shuffled {
			states[rng.Intn(len(states))].Observe(int64(i+1), r)
		}
		merged := states[0]
		for _, o := range states[1:] {
			merged.Merge(o)
		}
		return reflect.DeepEqual(want, merged.Finding())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("permutation property failed: %v", err)
	}
}

func TestReferentialCheck(t *testing.T) {
	c := ReferentialCheck{
		Fields:  []string{"customer_id"},
		Ref:     map[string]struct{}{"c1": {}, "c2": {}},
		RefName: "customers",
	}
	recs := []Record{
		{"customer_id": "c1"}, {"customer_id": "zz"}, {"customer_id": "c2"},
		{"customer_id": ""}, {"customer_id": "zz"}, {"customer_id": "aa"},
	}
	f := observeAll(c.NewStates(3, 5), recs)
	if f.Records != 6 || f.Violations != 4 || f.Passed {
		t.Fatalf("finding = %+v", f)
	}
	want := []string{
		"1 records with blank key",
		`key "aa" not in customers (1 records, first record 6)`,
		`key "zz" not in customers (2 records, first record 2)`,
	}
	if !reflect.DeepEqual(f.Details, want) {
		t.Fatalf("details = %v", f.Details)
	}

	opt := c
	opt.Optional = true
	fo := observeAll(opt.NewStates(2, 5), recs)
	if fo.Violations != 3 {
		t.Fatalf("optional finding = %+v", fo)
	}
}

// TestReferentialDetailsCapDeterministic pins keyTally's bounded
// retention: the lexicographically smallest keys survive with exact
// counts, however the records are sharded.
func TestReferentialDetailsCapDeterministic(t *testing.T) {
	c := ReferentialCheck{Fields: []string{"fk"}, Ref: map[string]struct{}{}, RefName: "ref"}
	var recs []Record
	for i := 0; i < 120; i++ {
		recs = append(recs, Record{"fk": fmt.Sprintf("m%02d", i%40)})
	}
	single := observeAll(c.NewStates(1, 3), recs)
	for _, workers := range []int{2, 5, 8} {
		sharded := observeAll(c.NewStates(workers, 3), recs)
		if !reflect.DeepEqual(single, sharded) {
			t.Fatalf("workers=%d finding diverged:\n  single  %+v\n  sharded %+v", workers, single, sharded)
		}
	}
	if !strings.Contains(single.Details[0], `"m00" not in ref (3 records`) {
		t.Fatalf("details = %v", single.Details)
	}
	if last := single.Details[len(single.Details)-1]; !strings.Contains(last, "more dangling records") {
		t.Fatalf("details = %v", single.Details)
	}
}

func TestTimelinessCheck(t *testing.T) {
	asOf := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	c := TimelinessCheck{
		Field:   "ts",
		Windows: []time.Duration{7 * 24 * time.Hour, 24 * time.Hour},
		MaxAge:  30 * 24 * time.Hour,
		Now:     func() time.Time { return asOf },
	}
	recs := []Record{
		{"ts": asOf.Add(-time.Hour).Format(time.RFC3339)},           // within both windows
		{"ts": asOf.Add(-3 * 24 * time.Hour).Format(time.RFC3339)},  // within 7d only
		{"ts": asOf.Add(-60 * 24 * time.Hour).Format(time.RFC3339)}, // stale
		{"ts": asOf.Add(time.Hour).Format(time.RFC3339)},            // future beyond skew
		{"ts": asOf.Add(time.Minute).Format(time.RFC3339)},          // within skew, within windows
		{"ts": "garbage"},
		{"ts": ""},
	}
	f := observeAll(c.NewStates(3, 5), recs)
	if f.Records != 7 || f.Violations != 4 || f.Passed {
		t.Fatalf("finding = %+v", f)
	}
	want := []string{
		"within 24h0m0s: 28.6% (2/7)",
		"within 168h0m0s: 42.9% (3/7)",
		"event-time skew min -1h0m0s, max 1440h0m0s",
		"1 records older than 720h0m0s",
		"1 records future-dated beyond 5m0s",
		"1 records with unparsable timestamps",
		"1 records with blank ts",
	}
	if !reflect.DeepEqual(f.Details, want) {
		t.Fatalf("details = %v", f.Details)
	}

	opt := c
	opt.Optional = true
	fo := observeAll(opt.NewStates(2, 5), recs)
	if fo.Violations != 3 || fo.Records != 7 {
		t.Fatalf("optional finding = %+v", fo)
	}
}

// TestStatefulRowBatchParity pins the tentpole's path parity at the state
// level: ObserveBatch over a columnarized batch must produce the same
// finding as Observe over the records.
func TestStatefulRowBatchParity(t *testing.T) {
	recs := parityRecords(300)
	asOf := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	checks := []StatefulCheck{
		UniquenessCheck{Fields: []string{"a", "n"}},
		UniquenessCheck{Fields: []string{"ts"}, MaxExact: 4, BloomBits: 1 << 10},
		ReferentialCheck{Fields: []string{"b"}, Ref: map[string]struct{}{"42": {}, "abc": {}}},
		TimelinessCheck{Field: "ts", Windows: []time.Duration{24 * time.Hour},
			MaxAge: 365 * 24 * time.Hour, Now: func() time.Time { return asOf }},
	}
	batch := &ColumnBatch{}
	batch.Columnarize(recs)
	for _, sc := range checks {
		rowState := sc.NewStates(1, 4)[0]
		for i, r := range recs {
			rowState.Observe(int64(i+1), r)
		}
		colState := sc.NewStates(1, 4)[0]
		colState.ObserveBatch(1, batch)
		got, want := colState.Finding(), rowState.Finding()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s diverged:\n  rows    %+v\n  columns %+v", sc.Name(), want, got)
		}
	}
}

func TestKeyTallyEviction(t *testing.T) {
	tl := newKeyTally(2)
	tl.add("m", 5, 1)
	tl.add("z", 1, 1)
	tl.add("a", 9, 1) // evicts z (largest)
	tl.add("z", 2, 1) // dropped: z >= current max "m"
	if got := tl.sortedKeys(); !reflect.DeepEqual(got, []string{"a", "m"}) {
		t.Fatalf("keys = %v", got)
	}
	if tl.keys["a"].first != 9 || tl.keys["m"].first != 5 {
		t.Fatalf("tally = %+v", tl.keys)
	}
}

func TestBloomEstimate(t *testing.T) {
	bf := newBloom(1 << 14)
	for i := 0; i < 1000; i++ {
		bf.insert(fmt.Sprintf("key-%d", i))
		bf.insert(fmt.Sprintf("key-%d", i)) // idempotent
	}
	est := bf.estimateDistinct(1 << 20)
	if est < 900 || est > 1100 {
		t.Fatalf("estimate = %d, want ~1000", est)
	}
}
