// Package dqruntime executes Data Quality Software Requirements at
// application runtime: it provides the check functions the paper's
// DQ_Validator elements promise (check_completeness, check_precision, ...),
// the metadata capture its DQ_Metadata elements store (traceability and
// confidentiality), and an Enforcer assembled directly from a DQSR model —
// closing the loop from captured requirement to executed check.
package dqruntime

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"

	"github.com/modeldriven/dqwebre/internal/iso25012"
)

// Record is one unit of user-entered data: field name → raw string value,
// as a web form delivers it.
type Record map[string]string

// Clone returns an independent copy of the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Check is one executable data quality check over a record.
type Check interface {
	// Name identifies the check, e.g. "check_completeness".
	Name() string
	// Characteristic is the ISO/IEC 25012 characteristic the check measures.
	Characteristic() iso25012.Characteristic
	// Apply evaluates the record.
	Apply(r Record) CheckResult
}

// CheckResult is the outcome of one check on one record.
type CheckResult struct {
	// Check is the check's name.
	Check string
	// Characteristic measured.
	Characteristic iso25012.Characteristic
	// Passed reports whether the record satisfies the check outright.
	Passed bool
	// Score is the measured level in [0, 1]; 1 for a full pass.
	Score float64
	// Details lists the offending fields or conditions, empty on pass.
	Details []string
}

// String renders the result for reports.
func (cr CheckResult) String() string {
	verdict := "ok"
	if !cr.Passed {
		verdict = "FAIL " + strings.Join(cr.Details, "; ")
	}
	return fmt.Sprintf("%s [%s] score=%.2f %s", cr.Check, cr.Characteristic, cr.Score, verdict)
}

// CompletenessCheck verifies every required field has a non-blank value —
// the paper's "verify that all data have been completed by reviewer",
// realized as check_completeness.
type CompletenessCheck struct {
	// Required lists the fields that must be present and non-blank.
	Required []string
}

// Name returns "check_completeness".
func (CompletenessCheck) Name() string { return "check_completeness" }

// Characteristic returns Completeness.
func (CompletenessCheck) Characteristic() iso25012.Characteristic { return iso25012.Completeness }

// Apply scores the fraction of required fields that are filled.
func (c CompletenessCheck) Apply(r Record) CheckResult {
	res := CheckResult{Check: c.Name(), Characteristic: c.Characteristic()}
	if len(c.Required) == 0 {
		res.Passed, res.Score = true, 1
		return res
	}
	filled := 0
	for _, f := range c.Required {
		if strings.TrimSpace(r[f]) != "" {
			filled++
		} else {
			res.Details = append(res.Details, "missing "+f)
		}
	}
	res.Score = float64(filled) / float64(len(c.Required))
	res.Passed = filled == len(c.Required)
	return res
}

// PrecisionCheck verifies a numeric field lies within inclusive bounds —
// the paper's "validate the score assigned to each topic of revision",
// realized as check_precision with a DQConstraint's bounds.
type PrecisionCheck struct {
	// Field is the numeric field to check.
	Field string
	// Lower and Upper are the inclusive bounds.
	Lower, Upper int64
	// Optional, when true, passes blank values (completeness is a separate
	// concern).
	Optional bool
}

// Name returns "check_precision".
func (PrecisionCheck) Name() string { return "check_precision" }

// Characteristic returns Precision.
func (PrecisionCheck) Characteristic() iso25012.Characteristic { return iso25012.Precision }

// Apply parses the field and checks the bounds.
func (c PrecisionCheck) Apply(r Record) CheckResult {
	res := CheckResult{Check: c.Name(), Characteristic: c.Characteristic()}
	raw := strings.TrimSpace(r[c.Field])
	if raw == "" {
		if c.Optional {
			res.Passed, res.Score = true, 1
			return res
		}
		res.Details = []string{c.Field + " is blank"}
		return res
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		res.Details = []string{fmt.Sprintf("%s=%q is not an integer", c.Field, raw)}
		return res
	}
	if n < c.Lower || n > c.Upper {
		res.Details = []string{fmt.Sprintf("%s=%d outside [%d,%d]", c.Field, n, c.Lower, c.Upper)}
		return res
	}
	res.Passed, res.Score = true, 1
	return res
}

// AccuracyCheck verifies a field matches a syntactic pattern (e.g. an email
// address shape), a common realization of the Accuracy characteristic.
type AccuracyCheck struct {
	// Field is the field to check.
	Field string
	// Pattern is the anchored regular expression the value must match.
	Pattern *regexp.Regexp
	// Optional passes blank values.
	Optional bool
}

// Name returns "check_accuracy".
func (AccuracyCheck) Name() string { return "check_accuracy" }

// Characteristic returns Accuracy.
func (AccuracyCheck) Characteristic() iso25012.Characteristic { return iso25012.Accuracy }

// Apply matches the pattern.
func (c AccuracyCheck) Apply(r Record) CheckResult {
	res := CheckResult{Check: c.Name(), Characteristic: c.Characteristic()}
	raw := strings.TrimSpace(r[c.Field])
	if raw == "" {
		if c.Optional {
			res.Passed, res.Score = true, 1
			return res
		}
		res.Details = []string{c.Field + " is blank"}
		return res
	}
	if c.Pattern == nil || !c.Pattern.MatchString(raw) {
		res.Details = []string{fmt.Sprintf("%s=%q does not match the expected format", c.Field, raw)}
		return res
	}
	res.Passed, res.Score = true, 1
	return res
}

// EmailPattern is a pragmatic anchored email shape for AccuracyChecks.
var EmailPattern = regexp.MustCompile(`^[^@\s]+@[^@\s]+\.[^@\s]+$`)

// ConsistencyCheck verifies a cross-field predicate, realizing the
// Consistency characteristic ("free from contradiction").
type ConsistencyCheck struct {
	// Rule names the consistency rule for diagnostics.
	Rule string
	// Predicate returns true when the record is consistent.
	Predicate func(Record) bool
}

// Name returns "check_consistency".
func (ConsistencyCheck) Name() string { return "check_consistency" }

// Characteristic returns Consistency.
func (ConsistencyCheck) Characteristic() iso25012.Characteristic { return iso25012.Consistency }

// Apply evaluates the predicate.
func (c ConsistencyCheck) Apply(r Record) CheckResult {
	res := CheckResult{Check: c.Name(), Characteristic: c.Characteristic()}
	if c.Predicate == nil || c.Predicate(r) {
		res.Passed, res.Score = true, 1
		return res
	}
	res.Details = []string{"violates rule: " + c.Rule}
	return res
}

// DefaultMaxSkew is how far ahead of the clock a timestamp may sit before
// CurrentnessCheck rejects it as future-dated.
const DefaultMaxSkew = 5 * time.Minute

// CurrentnessCheck verifies a timestamp field is recent enough, realizing
// the Currentness characteristic ("of the right age"). Timestamps ahead
// of the clock by more than MaxSkew fail too: a future event time is not
// "current", it is wrong.
type CurrentnessCheck struct {
	// Field holds an RFC 3339 timestamp.
	Field string
	// MaxAge is the oldest acceptable age.
	MaxAge time.Duration
	// MaxSkew tolerates timestamps this far in the future (clock drift
	// between writer and validator); 0 means DefaultMaxSkew, negative
	// means no tolerance.
	MaxSkew time.Duration
	// Now supplies the current time; time.Now when nil.
	Now func() time.Time
	// Optional passes blank values.
	Optional bool
}

// skew resolves the effective future tolerance.
func (c CurrentnessCheck) skew() time.Duration {
	if c.MaxSkew == 0 {
		return DefaultMaxSkew
	}
	if c.MaxSkew < 0 {
		return 0
	}
	return c.MaxSkew
}

// Name returns "check_currentness".
func (CurrentnessCheck) Name() string { return "check_currentness" }

// Characteristic returns Currentness.
func (CurrentnessCheck) Characteristic() iso25012.Characteristic { return iso25012.Currentness }

// Apply parses the timestamp and compares ages.
func (c CurrentnessCheck) Apply(r Record) CheckResult {
	res := CheckResult{Check: c.Name(), Characteristic: c.Characteristic()}
	raw := strings.TrimSpace(r[c.Field])
	if raw == "" {
		if c.Optional {
			res.Passed, res.Score = true, 1
			return res
		}
		res.Details = []string{c.Field + " is blank"}
		return res
	}
	ts, err := time.Parse(time.RFC3339, raw)
	if err != nil {
		res.Details = []string{fmt.Sprintf("%s=%q is not an RFC3339 timestamp", c.Field, raw)}
		return res
	}
	now := time.Now
	if c.Now != nil {
		now = c.Now
	}
	age := now().Sub(ts)
	if skew := c.skew(); age < -skew {
		res.Details = []string{fmt.Sprintf("%s is %s in the future, tolerance %s", c.Field, -age, skew)}
		return res
	}
	if age > c.MaxAge {
		res.Details = []string{fmt.Sprintf("%s is %s old, limit %s", c.Field, age, c.MaxAge)}
		return res
	}
	res.Passed, res.Score = true, 1
	return res
}

// Validator executes a set of checks over records — the runtime counterpart
// of the model's «DQ_Validator» element.
type Validator struct {
	name   string
	checks []Check
}

// NewValidator creates a named validator.
func NewValidator(name string, checks ...Check) *Validator {
	return &Validator{name: name, checks: checks}
}

// Name returns the validator's name.
func (v *Validator) Name() string { return v.name }

// Add appends checks.
func (v *Validator) Add(checks ...Check) *Validator {
	v.checks = append(v.checks, checks...)
	return v
}

// Checks returns the checks in declaration order.
func (v *Validator) Checks() []Check { return append([]Check(nil), v.checks...) }

// Validate runs every check against the record.
func (v *Validator) Validate(r Record) *Report {
	rep := &Report{Validator: v.name}
	v.ValidateInto(r, rep)
	return rep
}

// ValidateInto runs every check against the record, writing the results
// into rep and reusing its Results storage. It is the allocation-cheap
// path for batch validation: a caller looping over millions of records
// keeps one Report per worker and pays no per-record slice growth once
// the capacity has warmed up (passing checks allocate nothing; failing
// checks still allocate their Details).
func (v *Validator) ValidateInto(r Record, rep *Report) {
	rep.Validator = v.name
	rep.Results = rep.Results[:0]
	for _, c := range v.checks {
		rep.Results = append(rep.Results, c.Apply(r))
	}
}

// ValidateObserved is ValidateInto with per-check attribution: observe is
// called once per check with the freshly appended result and the check's
// execution latency in seconds. It is the instrumented sibling of the
// batch hot path — callers that need no attribution should keep calling
// ValidateInto, which pays no clock reads.
func (v *Validator) ValidateObserved(r Record, rep *Report, observe func(res *CheckResult, seconds float64)) {
	if observe == nil {
		v.ValidateInto(r, rep)
		return
	}
	rep.Validator = v.name
	rep.Results = rep.Results[:0]
	for _, c := range v.checks {
		t0 := time.Now()
		rep.Results = append(rep.Results, c.Apply(r))
		observe(&rep.Results[len(rep.Results)-1], time.Since(t0).Seconds())
	}
}

// Report aggregates check results for one record.
type Report struct {
	// Validator is the producing validator's name.
	Validator string
	// Results holds one entry per check, in check order.
	Results []CheckResult
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, res := range r.Results {
		if !res.Passed {
			return false
		}
	}
	return true
}

// Failures returns the failing results.
func (r *Report) Failures() []CheckResult {
	var out []CheckResult
	for _, res := range r.Results {
		if !res.Passed {
			out = append(out, res)
		}
	}
	return out
}

// Scores aggregates measured levels per characteristic: the minimum score
// across that characteristic's checks (a record is only as good as its
// worst check), suitable for iso25012.DQModel.Assess.
func (r *Report) Scores() map[iso25012.Characteristic]float64 {
	out := map[iso25012.Characteristic]float64{}
	seen := map[iso25012.Characteristic]bool{}
	for _, res := range r.Results {
		if !seen[res.Characteristic] || res.Score < out[res.Characteristic] {
			out[res.Characteristic] = res.Score
		}
		seen[res.Characteristic] = true
	}
	return out
}
