package dqruntime

import (
	"fmt"
	"time"

	"github.com/modeldriven/dqwebre/internal/iso25012"
)

// Vectorized validation: a Validator runs each check over a whole
// ColumnBatch at once, writing per-row verdicts into reusable column
// results. Checks that implement BatchCheck evaluate columns directly;
// everything else transparently falls back to the row path through a
// pooled RowView adapter, so a validator mixing vectorized and legacy
// checks still produces one uniform BatchReport. Verdict-for-verdict the
// output equals running Apply per row — the parity tests hold every stock
// check to that, details included.

// BatchCheck is implemented by checks that can evaluate a whole columnar
// batch at once. ApplyBatch must produce, for every row, exactly the
// verdict Apply would produce for that row's record: out arrives
// initialized to all-pass (Passed true, Score 1, Details nil), so
// implementations only write failing (or partially scored) rows.
// Implementations may share one Details slice across rows and calls;
// consumers treat details as immutable.
type BatchCheck interface {
	Check
	ApplyBatch(b *ColumnBatch, out *ColumnResult)
}

// ColumnResult holds one check's verdicts for every row of a batch, in
// row order.
type ColumnResult struct {
	// Check names the producing check; Characteristic is what it measures.
	Check          string
	Characteristic iso25012.Characteristic
	// Passed, Score and Details have one entry per row, mirroring
	// CheckResult's fields. Details entries may be shared across rows.
	Passed  []bool
	Score   []float64
	Details [][]string
}

// reset sizes the result for rows and initializes every row to a full
// pass, reusing storage.
func (cr *ColumnResult) reset(check string, ch iso25012.Characteristic, rows int) {
	cr.Check = check
	cr.Characteristic = ch
	if cap(cr.Passed) < rows {
		cr.Passed = make([]bool, rows)
		cr.Score = make([]float64, rows)
		cr.Details = make([][]string, rows)
	}
	cr.Passed = cr.Passed[:rows]
	cr.Score = cr.Score[:rows]
	cr.Details = cr.Details[:rows]
	for i := range cr.Passed {
		cr.Passed[i] = true
		cr.Score[i] = 1
	}
	clear(cr.Details)
}

// Fail marks one row failed with the given score and details. Details may
// be shared across rows; consumers must not mutate them.
func (cr *ColumnResult) Fail(row int, score float64, details []string) {
	cr.Passed[row] = false
	cr.Score[row] = score
	cr.Details[row] = details
}

// BatchReport aggregates one batch's check results: one ColumnResult per
// check, in the validator's check order. Reuse one report per worker; all
// storage recycles across batches.
type BatchReport struct {
	// Validator is the producing validator's name.
	Validator string
	// Results holds one column of verdicts per check, in check order.
	Results []ColumnResult
	rows    int
	// scratch is the pooled row-view map for checks without a vectorized
	// path.
	scratch Record
	// order caches the cost-ordered evaluation schedule.
	order []int
}

// Rows returns the number of rows the last ValidateBatch covered.
func (rep *BatchReport) Rows() int { return rep.rows }

// RowPassed reports whether every check passed the given row.
func (rep *BatchReport) RowPassed(row int) bool {
	for i := range rep.Results {
		if !rep.Results[i].Passed[row] {
			return false
		}
	}
	return true
}

// checkCost ranks checks by estimated per-row cost, so ValidateBatch runs
// cheap predicates first within the batch: null-bitmap scans, then integer
// bounds, then timestamp parses and compiled OCL, then regexes, with
// row-fallback checks last (they pay the map adapter). Results always land
// at the check's declared index, so the schedule changes timing only,
// never output order.
func checkCost(c Check) int {
	switch c.(type) {
	case CompletenessCheck, *CompletenessCheck:
		return 1
	case PrecisionCheck, *PrecisionCheck:
		return 2
	case CurrentnessCheck, *CurrentnessCheck:
		return 3
	case *OCLCheck:
		return 4
	case AccuracyCheck, *AccuracyCheck:
		return 5
	}
	if _, ok := c.(BatchCheck); ok {
		return 6
	}
	return 100
}

// orderFor returns the cost-ordered evaluation schedule, cached across
// batches (check sets are fixed per validator during a run).
func (rep *BatchReport) orderFor(checks []Check) []int {
	if len(rep.order) == len(checks) {
		return rep.order
	}
	rep.order = rep.order[:0]
	for i := range checks {
		rep.order = append(rep.order, i)
	}
	// Insertion sort by cost, stable: ties keep declaration order.
	for i := 1; i < len(rep.order); i++ {
		for j := i; j > 0 && checkCost(checks[rep.order[j]]) < checkCost(checks[rep.order[j-1]]); j-- {
			rep.order[j], rep.order[j-1] = rep.order[j-1], rep.order[j]
		}
	}
	return rep.order
}

// ValidateBatch runs every check against the batch, writing one
// ColumnResult per check into rep (reusing its storage). Checks without a
// vectorized path run row by row through a pooled RowView adapter.
func (v *Validator) ValidateBatch(b *ColumnBatch, rep *BatchReport) {
	rows := b.Rows()
	rep.Validator = v.name
	rep.rows = rows
	if cap(rep.Results) < len(v.checks) {
		results := make([]ColumnResult, len(v.checks))
		copy(results, rep.Results)
		rep.Results = results
	}
	rep.Results = rep.Results[:len(v.checks)]
	for _, idx := range rep.orderFor(v.checks) {
		c := v.checks[idx]
		out := &rep.Results[idx]
		out.reset(c.Name(), c.Characteristic(), rows)
		if bc, ok := c.(BatchCheck); ok {
			bc.ApplyBatch(b, out)
			continue
		}
		if rep.scratch == nil {
			rep.scratch = make(Record, 8)
		}
		for r := 0; r < rows; r++ {
			res := c.Apply(b.RowView(r, rep.scratch))
			out.Passed[r] = res.Passed
			out.Score[r] = res.Score
			out.Details[r] = res.Details
		}
	}
}

// filled reports whether a cell counts as filled for completeness: present
// and not blank after trimming, exactly strings.TrimSpace(r[f]) != "".
func filledCell(k CellKind) bool { return k != CellMissing && k != CellBlank }

// ApplyBatch scores each row's fraction of filled required fields.
func (c CompletenessCheck) ApplyBatch(b *ColumnBatch, out *ColumnResult) {
	nreq := len(c.Required)
	if nreq == 0 {
		return
	}
	rows := b.Rows()
	for _, f := range c.Required {
		detail := "missing " + f
		col := b.Col(f)
		if col == nil {
			for r := 0; r < rows; r++ {
				out.Details[r] = append(out.Details[r], detail)
			}
			continue
		}
		for r, k := range col.Kinds {
			if !filledCell(k) {
				out.Details[r] = append(out.Details[r], detail)
			}
		}
	}
	for r := 0; r < rows; r++ {
		if missing := len(out.Details[r]); missing > 0 {
			out.Passed[r] = false
			out.Score[r] = float64(nreq-missing) / float64(nreq)
		}
	}
}

// ApplyBatch checks the integer bounds against the pre-parsed column.
func (c PrecisionCheck) ApplyBatch(b *ColumnBatch, out *ColumnResult) {
	rows := b.Rows()
	var blankDetail []string
	blank := func(r int) {
		if !c.Optional {
			if blankDetail == nil {
				blankDetail = []string{c.Field + " is blank"}
			}
			out.Fail(r, 0, blankDetail)
		}
	}
	col := b.Col(c.Field)
	if col == nil {
		for r := 0; r < rows; r++ {
			blank(r)
		}
		return
	}
	var lastBadInt int64
	var lastBadIntDetail []string
	var lastBadStr string
	var lastBadStrDetail []string
	for r, k := range col.Kinds {
		switch k {
		case CellMissing, CellBlank:
			blank(r)
		case CellInt:
			n := col.Ints[r]
			if n < c.Lower || n > c.Upper {
				if lastBadIntDetail == nil || lastBadInt != n {
					lastBadInt = n
					lastBadIntDetail = []string{fmt.Sprintf("%s=%d outside [%d,%d]", c.Field, n, c.Lower, c.Upper)}
				}
				out.Fail(r, 0, lastBadIntDetail)
			}
		default:
			s := col.Trim[r]
			if lastBadStrDetail == nil || lastBadStr != s {
				lastBadStr = s
				lastBadStrDetail = []string{fmt.Sprintf("%s=%q is not an integer", c.Field, s)}
			}
			out.Fail(r, 0, lastBadStrDetail)
		}
	}
}

// ApplyBatch matches the pattern over the column, memoizing consecutive
// equal values so constant-ish columns run the regex a handful of times
// per batch instead of per row.
func (c AccuracyCheck) ApplyBatch(b *ColumnBatch, out *ColumnResult) {
	rows := b.Rows()
	var blankDetail []string
	blank := func(r int) {
		if !c.Optional {
			if blankDetail == nil {
				blankDetail = []string{c.Field + " is blank"}
			}
			out.Fail(r, 0, blankDetail)
		}
	}
	col := b.Col(c.Field)
	if col == nil {
		for r := 0; r < rows; r++ {
			blank(r)
		}
		return
	}
	var lastVal string
	var lastOK, haveLast bool
	var lastDetail []string
	for r, k := range col.Kinds {
		if !filledCell(k) {
			blank(r)
			continue
		}
		s := col.Trim[r]
		if !haveLast || s != lastVal {
			lastVal, haveLast = s, true
			lastOK = c.Pattern != nil && c.Pattern.MatchString(s)
			lastDetail = nil
		}
		if !lastOK {
			if lastDetail == nil {
				lastDetail = []string{fmt.Sprintf("%s=%q does not match the expected format", c.Field, s)}
			}
			out.Fail(r, 0, lastDetail)
		}
	}
}

// ApplyBatch parses timestamps with a consecutive-value memo; the age
// comparison still reads the clock per row, like the row path.
func (c CurrentnessCheck) ApplyBatch(b *ColumnBatch, out *ColumnResult) {
	rows := b.Rows()
	var blankDetail []string
	blank := func(r int) {
		if !c.Optional {
			if blankDetail == nil {
				blankDetail = []string{c.Field + " is blank"}
			}
			out.Fail(r, 0, blankDetail)
		}
	}
	col := b.Col(c.Field)
	if col == nil {
		for r := 0; r < rows; r++ {
			blank(r)
		}
		return
	}
	now := time.Now
	if c.Now != nil {
		now = c.Now
	}
	var lastVal string
	var haveLast bool
	var lastTS time.Time
	var lastErr bool
	var lastErrDetail []string
	for r, k := range col.Kinds {
		if !filledCell(k) {
			blank(r)
			continue
		}
		s := col.Trim[r]
		if !haveLast || s != lastVal {
			lastVal, haveLast = s, true
			ts, err := time.Parse(time.RFC3339, s)
			lastTS, lastErr = ts, err != nil
			lastErrDetail = nil
		}
		if lastErr {
			if lastErrDetail == nil {
				lastErrDetail = []string{fmt.Sprintf("%s=%q is not an RFC3339 timestamp", c.Field, s)}
			}
			out.Fail(r, 0, lastErrDetail)
			continue
		}
		age := now().Sub(lastTS)
		if skew := c.skew(); age < -skew {
			out.Fail(r, 0, []string{fmt.Sprintf("%s is %s in the future, tolerance %s", c.Field, -age, skew)})
			continue
		}
		if age > c.MaxAge {
			out.Fail(r, 0, []string{fmt.Sprintf("%s is %s old, limit %s", c.Field, age, c.MaxAge)})
		}
	}
}
