package dqruntime

import (
	"strconv"
	"strings"
)

// Columnar record batches: instead of one map[string]string per record,
// a batch holds one Column per field with parallel per-row arrays. Each
// cell is decoded and classified exactly once at append time — trimmed,
// kind-tagged, and (when numeric or boolean) parsed — so every check that
// reads the field afterwards pays a slice index instead of a TrimSpace and
// a strconv round-trip. A lazy row-view adapter rebuilds a Record for
// checks that have no vectorized path.

// CellKind classifies one cell's decoded value.
type CellKind uint8

const (
	// CellMissing marks a field absent from the record entirely.
	CellMissing CellKind = iota
	// CellBlank marks a present value that trims to the empty string.
	CellBlank
	// CellString is a non-blank value that parses as neither number nor
	// Boolean.
	CellString
	// CellInt parses via strconv.ParseInt(trimmed, 10, 64).
	CellInt
	// CellFloat fails integer parsing but parses via strconv.ParseFloat.
	CellFloat
	// CellBool is exactly "true" or "false" after trimming.
	CellBool
)

// Column is one field's cells across a batch. The parallel slices all have
// one entry per row; Ints/Floats/Bools entries are meaningful only where
// Kinds says so.
type Column struct {
	// Name is the field name.
	Name string
	// Kinds classifies each cell.
	Kinds []CellKind
	// Raw holds the value exactly as delivered ("" for missing cells);
	// Trim holds strings.TrimSpace(Raw) — sharing Raw's backing when no
	// trimming was needed.
	Raw  []string
	Trim []string
	// Ints, Floats and Bools hold parsed values for CellInt, CellFloat and
	// CellBool cells.
	Ints   []int64
	Floats []float64
	Bools  []bool
	// ocl memoizes the boxed OCL-domain values (see OCLValues).
	ocl []any
}

// numericish marks bytes that can appear in some string strconv.ParseInt
// (base 10) or ParseFloat accepts: digits, sign, point, underscore, hex
// and exponent markers, and the letters of inf/infinity/nan. A byte
// outside the set proves both parses fail, so classification skips them —
// and their *NumError allocations — for free-text values.
var numericish [256]bool

func init() {
	for _, c := range []byte("0123456789+-._xXpPiIoOnNtTyYabcdefABCDEF") {
		numericish[c] = true
	}
}

func plausiblyNumeric(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !numericish[s[i]] {
			return false
		}
	}
	return true
}

// appendCell classifies and appends one present cell.
func (c *Column) appendCell(raw string) {
	trimmed := strings.TrimSpace(raw)
	c.Raw = append(c.Raw, raw)
	c.Trim = append(c.Trim, trimmed)
	kind := CellString
	var iv int64
	var fv float64
	var bv bool
	switch {
	case trimmed == "":
		kind = CellBlank
	case trimmed == "true":
		kind, bv = CellBool, true
	case trimmed == "false":
		kind, bv = CellBool, false
	case plausiblyNumeric(trimmed):
		if n, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
			kind, iv = CellInt, n
		} else if f, err := strconv.ParseFloat(trimmed, 64); err == nil {
			kind, fv = CellFloat, f
		}
	}
	c.Kinds = append(c.Kinds, kind)
	c.Ints = append(c.Ints, iv)
	c.Floats = append(c.Floats, fv)
	c.Bools = append(c.Bools, bv)
}

// appendMissing appends one absent cell.
func (c *Column) appendMissing() {
	c.Kinds = append(c.Kinds, CellMissing)
	c.Raw = append(c.Raw, "")
	c.Trim = append(c.Trim, "")
	c.Ints = append(c.Ints, 0)
	c.Floats = append(c.Floats, 0)
	c.Bools = append(c.Bools, false)
}

// padTo appends missing cells until the column has n entries.
func (c *Column) padTo(n int) {
	for len(c.Kinds) < n {
		c.appendMissing()
	}
}

func (c *Column) reset(name string) {
	c.Name = name
	c.Kinds = c.Kinds[:0]
	c.Raw = c.Raw[:0]
	c.Trim = c.Trim[:0]
	c.Ints = c.Ints[:0]
	c.Floats = c.Floats[:0]
	c.Bools = c.Bools[:0]
	c.ocl = nil
}

// OCLValues returns the column's cells lifted into the OCL domain, exactly
// as recordOCLValue lifts row values: missing and blank cells are null,
// Booleans and numbers are their parsed values, everything else the
// trimmed string. The boxed slice is built once per batch and memoized;
// consecutive equal values share one boxed interface value, so low-
// cardinality columns (enum-like fields, constant columns) box a handful
// of times instead of once per row. Not safe for concurrent first use —
// a batch belongs to one worker at a time.
func (c *Column) OCLValues() []any {
	if c.ocl != nil || len(c.Kinds) == 0 {
		return c.ocl
	}
	vals := make([]any, len(c.Kinds))
	lastKind := CellMissing
	var lastInt int64
	var lastFloat float64
	var lastStr string
	var lastBoxed any
	for i, k := range c.Kinds {
		switch k {
		case CellMissing, CellBlank:
			// vals[i] stays nil
		case CellBool:
			vals[i] = c.Bools[i] // bool boxing never allocates
		case CellInt:
			n := c.Ints[i]
			if lastKind != CellInt || lastInt != n {
				lastKind, lastInt, lastBoxed = CellInt, n, n
			}
			vals[i] = lastBoxed
		case CellFloat:
			f := c.Floats[i]
			if lastKind != CellFloat || lastFloat != f {
				lastKind, lastFloat, lastBoxed = CellFloat, f, f
			}
			vals[i] = lastBoxed
		default:
			s := c.Trim[i]
			if lastKind != CellString || lastStr != s {
				lastKind, lastStr, lastBoxed = CellString, s, s
			}
			vals[i] = lastBoxed
		}
	}
	c.ocl = vals
	return vals
}

// ColumnBatch is one chunk of records in columnar form. Build one with
// BeginRow/SetField/EndRow (streaming decoders) or Columnarize, reuse it
// across chunks with Reset, and slice views out of a larger batch with
// SliceInto.
type ColumnBatch struct {
	cols   []Column
	byName map[string]int
	rows   int
	nulls  []any
}

// Rows returns the number of complete rows in the batch.
func (b *ColumnBatch) Rows() int { return b.rows }

// Columns returns the batch's columns in creation order. The slice is the
// batch's own storage; callers must not grow it.
func (b *ColumnBatch) Columns() []Column { return b.cols }

// Col returns the named column, or nil when no record in the batch had the
// field.
func (b *ColumnBatch) Col(name string) *Column {
	if i, ok := b.byName[name]; ok {
		return &b.cols[i]
	}
	return nil
}

// Reset empties the batch for reuse, keeping column storage capacity.
func (b *ColumnBatch) Reset() {
	b.cols = b.cols[:0]
	b.rows = 0
	b.nulls = b.nulls[:0]
	clear(b.byName)
}

// col returns the named column, creating (and back-filling) it on demand.
func (b *ColumnBatch) col(name string) *Column {
	if i, ok := b.byName[name]; ok {
		return &b.cols[i]
	}
	if b.byName == nil {
		b.byName = make(map[string]int, 8)
	}
	b.cols = append(b.cols, Column{})
	c := &b.cols[len(b.cols)-1]
	c.reset(name)
	c.padTo(b.rows)
	b.byName[name] = len(b.cols) - 1
	return c
}

// SetField appends the current row's value for one field. Fields may
// arrive in any order; each field at most once per row.
func (b *ColumnBatch) SetField(name, raw string) {
	b.col(name).appendCell(raw)
}

// SetFieldBytes is SetField for decoders that hold the field name as a
// byte slice into their input buffer: once the column exists, the map
// lookup via string(name) does not allocate, so steady-state decoding
// never materializes the key.
func (b *ColumnBatch) SetFieldBytes(name []byte, raw string) {
	if i, ok := b.byName[string(name)]; ok {
		b.cols[i].appendCell(raw)
		return
	}
	b.col(string(name)).appendCell(raw)
}

// EndRow completes the current row, back-filling missing cells in columns
// the row did not touch.
func (b *ColumnBatch) EndRow() {
	b.rows++
	for i := range b.cols {
		b.cols[i].padTo(b.rows)
	}
}

// AbortRow discards any cells appended since the last EndRow, undoing a
// row whose decoding failed partway (the whole record is malformed, so
// none of its fields may land in the batch).
func (b *ColumnBatch) AbortRow() {
	for i := range b.cols {
		c := &b.cols[i]
		if len(c.Kinds) > b.rows {
			c.Kinds = c.Kinds[:b.rows]
			c.Raw = c.Raw[:b.rows]
			c.Trim = c.Trim[:b.rows]
			c.Ints = c.Ints[:b.rows]
			c.Floats = c.Floats[:b.rows]
			c.Bools = c.Bools[:b.rows]
		}
	}
}

// NullValues returns a shared all-null value column sized to the batch,
// for binding fields no column carries.
func (b *ColumnBatch) NullValues() []any {
	for len(b.nulls) < b.rows {
		b.nulls = append(b.nulls, nil)
	}
	return b.nulls[:b.rows]
}

// RowView fills scratch with row i's present fields (raw values), reusing
// the map — the adapter that lets row-oriented checks run over a columnar
// batch. The returned map is valid until the next RowView call on the same
// scratch.
func (b *ColumnBatch) RowView(i int, scratch Record) Record {
	clear(scratch)
	for ci := range b.cols {
		c := &b.cols[ci]
		if c.Kinds[i] != CellMissing {
			scratch[c.Name] = c.Raw[i]
		}
	}
	return scratch
}

// SliceInto fills dst with a zero-copy view of rows [lo, hi) of b: every
// column header in dst aliases b's cell storage. dst's own storage is not
// used; a later Reset reclaims it. Memoized OCL values slice along when
// already built, so pre-columnarized sources box once for the whole
// dataset.
func (b *ColumnBatch) SliceInto(dst *ColumnBatch, lo, hi int) {
	dst.rows = hi - lo
	dst.cols = dst.cols[:0]
	dst.nulls = nil
	if dst.byName == nil {
		dst.byName = make(map[string]int, len(b.cols))
	} else {
		clear(dst.byName)
	}
	for i := range b.cols {
		src := &b.cols[i]
		col := Column{
			Name:   src.Name,
			Kinds:  src.Kinds[lo:hi],
			Raw:    src.Raw[lo:hi],
			Trim:   src.Trim[lo:hi],
			Ints:   src.Ints[lo:hi],
			Floats: src.Floats[lo:hi],
			Bools:  src.Bools[lo:hi],
		}
		if src.ocl != nil {
			col.ocl = src.ocl[lo:hi]
		}
		dst.cols = append(dst.cols, col)
		dst.byName[src.Name] = i
	}
	if b.nulls != nil && len(b.nulls) >= hi-lo {
		dst.nulls = b.nulls[:hi-lo]
	}
}

// Columnarize appends records to the batch in row order — the bulk loader
// behind in-memory sources and tests.
func (b *ColumnBatch) Columnarize(recs []Record) {
	for _, r := range recs {
		for k, v := range r {
			b.SetField(k, v)
		}
		b.EndRow()
	}
}

// WarmOCLValues builds every column's boxed OCL values eagerly, so chunk
// views sliced from this batch share one boxing pass.
func (b *ColumnBatch) WarmOCLValues() {
	for i := range b.cols {
		b.cols[i].OCLValues()
	}
}
