package dqruntime_test

import (
	"strings"
	"testing"

	. "github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/uml"
)

func TestOCLCheckApply(t *testing.T) {
	chk, err := NewOCLCheck(iso25012.Consistency,
		"score.oclIsUndefined() or (score >= 0 and score <= 10)")
	if err != nil {
		t.Fatal(err)
	}
	if chk.Name() != "check_ocl" {
		t.Fatalf("Name() = %q", chk.Name())
	}
	if chk.Characteristic() != iso25012.Consistency {
		t.Fatalf("Characteristic() = %q", chk.Characteristic())
	}
	if got := chk.Fields(); len(got) != 1 || got[0] != "score" {
		t.Fatalf("Fields() = %v, want [score]", got)
	}
	cases := []struct {
		name   string
		record Record
		passed bool
	}{
		{"in range", Record{"score": "7"}, true},
		{"lower edge", Record{"score": "0"}, true},
		{"out of range", Record{"score": "11"}, false},
		{"negative", Record{"score": "-1"}, false},
		{"blank is null", Record{"score": "  "}, true},
		{"absent is null", Record{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := chk.Apply(tc.record)
			if res.Passed != tc.passed {
				t.Fatalf("Apply(%v) passed = %v, want %v (details %v)",
					tc.record, res.Passed, tc.passed, res.Details)
			}
			if want := 0.0; res.Passed {
				want = 1.0
			} else if res.Score != want {
				t.Fatalf("score = %v, want %v", res.Score, want)
			}
		})
	}
}

func TestOCLCheckCoercion(t *testing.T) {
	chk, err := NewOCLCheck(iso25012.Accuracy,
		"active = true and ratio > 0.5 and name.size() > 0")
	if err != nil {
		t.Fatal(err)
	}
	ok := Record{"active": "true", "ratio": "0.75", "name": "ada"}
	if res := chk.Apply(ok); !res.Passed {
		t.Fatalf("coercion failed: %v", res.Details)
	}
	bad := Record{"active": "false", "ratio": "0.75", "name": "ada"}
	if res := chk.Apply(bad); res.Passed {
		t.Fatal("active=false should fail")
	}
}

func TestOCLCheckEvaluationErrorFails(t *testing.T) {
	// A non-numeric value where the expression needs a number: the check
	// must fail with the OCL diagnostic rather than pass or panic.
	chk, err := NewOCLCheck(iso25012.Precision, "score >= 0")
	if err != nil {
		t.Fatal(err)
	}
	res := chk.Apply(Record{"score": "seven"})
	if res.Passed {
		t.Fatal("unevaluable constraint passed")
	}
	if len(res.Details) == 0 || !strings.Contains(res.Details[0], "ocl") {
		t.Fatalf("details = %v, want an OCL diagnostic", res.Details)
	}
}

func TestNewOCLCheckRejectsBadExpression(t *testing.T) {
	if _, err := NewOCLCheck(iso25012.Consistency, "score >="); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

// TestBuildFromDQSRWiresOCLConstraints covers the model-to-runtime path: a
// constraint component carrying an "ocl=" attribute becomes a compiled
// OCLCheck, and a dimension with no fixed-shape realization is upgraded
// from "custom" to "validator".
func TestBuildFromDQSRWiresOCLConstraints(t *testing.T) {
	m := uml.NewModel("ocl-dqsr", transform.DQSRMetamodel())
	req := m.MustCreate(transform.MetaSoftwareRequirement)
	req.MustSet("title", str("scores are consistent"))
	req.MustSet("dimension", str("Consistency"))
	comp := m.MustCreate(transform.MetaComponentSpec)
	comp.MustSet("name", str("DQConstraint"))
	comp.MustSet("kind", str(transform.KindConstraint))
	comp.MustAppend("attributes", str("ocl=low.oclIsUndefined() or high.oclIsUndefined() or low <= high"))
	req.MustAppend("realizedBy", metamodel.Ref{Target: comp})

	enf, err := BuildFromDQSR(m)
	if err != nil {
		t.Fatal(err)
	}
	reqs := enf.Requirements()
	if len(reqs) != 1 || reqs[0].Mechanism != "validator" {
		t.Fatalf("requirements = %+v, want one validator-backed entry", reqs)
	}
	checks := enf.Validator().Checks()
	if len(checks) != 1 {
		t.Fatalf("checks = %d, want 1", len(checks))
	}
	if _, ok := checks[0].(*OCLCheck); !ok {
		t.Fatalf("check is %T, want *OCLCheck", checks[0])
	}
	if rep := enf.CheckInput(Record{"low": "2", "high": "5"}); !rep.Passed() {
		t.Fatalf("consistent record failed: %v", rep.Failures())
	}
	if rep := enf.CheckInput(Record{"low": "9", "high": "5"}); rep.Passed() {
		t.Fatal("inconsistent record passed")
	}
}

func TestBuildFromDQSRRejectsBadOCLConstraint(t *testing.T) {
	m := uml.NewModel("bad-ocl", transform.DQSRMetamodel())
	req := m.MustCreate(transform.MetaSoftwareRequirement)
	req.MustSet("title", str("broken"))
	req.MustSet("dimension", str("Consistency"))
	comp := m.MustCreate(transform.MetaComponentSpec)
	comp.MustSet("name", str("DQConstraint"))
	comp.MustSet("kind", str(transform.KindConstraint))
	comp.MustAppend("attributes", str("ocl=1 +"))
	req.MustAppend("realizedBy", metamodel.Ref{Target: comp})
	if _, err := BuildFromDQSR(m); err == nil {
		t.Fatal("malformed OCL constraint accepted")
	}
}
