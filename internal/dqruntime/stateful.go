package dqruntime

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"

	"github.com/modeldriven/dqwebre/internal/iso25012"
)

// Cross-record checks: where a Check judges one record in isolation, a
// StatefulCheck accumulates state across the whole dataset — uniqueness of
// a key, referential consistency against another dataset, timeliness of
// the record stream — and renders one dataset-level CrossFinding at the
// end. Each worker of a parallel batch owns one private CheckState; the
// engine merges them single-threaded after the pool drains, exactly like
// the per-characteristic shard aggregation. Every state is built so that
// the merged result depends only on the multiset of observed records,
// never on how they were partitioned across workers or interleaved in
// time: counts are integers, selections are post-merge sorted, and the
// Bloom fallback unions bit-for-bit. That is what lets a Workers:8 run
// report byte-identically to a Workers:1 run.

// CrossFinding is the dataset-level outcome of one stateful check.
type CrossFinding struct {
	// Check names the producing check; Characteristic is the ISO/IEC 25012
	// characteristic it measures.
	Check          string                  `json:"check"`
	Characteristic iso25012.Characteristic `json:"characteristic"`
	// Records counts the records observed; Violations how many of them
	// broke the cross-record property.
	Records    int64 `json:"records"`
	Violations int64 `json:"violations"`
	// Score is the fraction of conforming records in [0, 1].
	Score float64 `json:"score"`
	// Passed reports a violation-free dataset.
	Passed bool `json:"passed"`
	// Approximate marks results derived from sketch state (Bloom filter)
	// rather than exact sets; Violations is then an estimate.
	Approximate bool `json:"approximate,omitempty"`
	// Details are human-readable diagnostics, deterministically ordered.
	Details []string `json:"details,omitempty"`
}

// CheckState is one worker's private accumulator for a stateful check.
// Observe and ObserveBatch are called only by the owning worker; Merge and
// Finding run single-threaded after the pool drains. Merge must be
// associative and order-independent in effect, so that any shard count and
// any record partition yield the same Finding.
type CheckState interface {
	// Observe folds one record; ordinal is its 1-based input position.
	Observe(ordinal int64, r Record)
	// ObserveBatch folds a columnar batch whose first row has the given
	// 1-based ordinal. It must be record-for-record equivalent to calling
	// Observe on each row.
	ObserveBatch(base int64, b *ColumnBatch)
	// Merge folds other (a state created by the same NewStates call) into
	// the receiver.
	Merge(other CheckState)
	// Finding renders the merged dataset-level result.
	Finding() CrossFinding
}

// StatefulCheck is a cross-record check: it mints the per-worker states
// for one batch run. NewStates is called once per run, so implementations
// resolve run-scoped context there — the evaluation clock is read once,
// reference sets are shared read-only across the states.
type StatefulCheck interface {
	// Name identifies the check, e.g. "check_uniqueness".
	Name() string
	// Characteristic is the ISO/IEC 25012 characteristic measured.
	Characteristic() iso25012.Characteristic
	// NewStates creates n independent per-worker states. maxDetails caps
	// the diagnostics retained per state and in the final finding.
	NewStates(n, maxDetails int) []CheckState
}

// keySep joins multi-field key parts; displayKey renders it readably.
const keySep = "\x1f"

func displayKey(k string) string { return strings.ReplaceAll(k, keySep, ", ") }

// KeyOf builds a record's key over the given fields: the single field's
// raw value, or the raw values joined in field order. Missing fields
// contribute the empty string, exactly as a map lookup would.
func KeyOf(fields []string, r Record) string {
	if len(fields) == 1 {
		return r[fields[0]]
	}
	var sb strings.Builder
	for i, f := range fields {
		if i > 0 {
			sb.WriteString(keySep)
		}
		sb.WriteString(r[f])
	}
	return sb.String()
}

// keyCols resolves the key fields' columns for one batch; entries are nil
// for fields no record in the batch carries.
func keyCols(fields []string, b *ColumnBatch, scratch []*Column) []*Column {
	scratch = scratch[:0]
	for _, f := range fields {
		scratch = append(scratch, b.Col(f))
	}
	return scratch
}

// colKeyAt extracts row i's key from the resolved columns, mirroring KeyOf
// on the row path (missing column or cell → "").
func colKeyAt(cols []*Column, i int) string {
	if len(cols) == 1 {
		if cols[0] == nil {
			return ""
		}
		return cols[0].Raw[i]
	}
	var sb strings.Builder
	for ci, c := range cols {
		if ci > 0 {
			sb.WriteString(keySep)
		}
		if c != nil {
			sb.WriteString(c.Raw[i])
		}
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Bloom filter: the sketch the uniqueness check degrades to past MaxExact.

// bloomFilter is a fixed-size Bloom filter whose insert is idempotent and
// whose union is a bitwise OR — both independent of insertion order and
// sharding, which keeps the approximate mode deterministic.
type bloomFilter struct {
	words []uint64
	m     uint64 // bit count, always a multiple of 64
}

// bloomHashCount is k, the probe count per key.
const bloomHashCount = 7

func newBloom(bitCount int) *bloomFilter {
	words := (bitCount + 63) / 64
	if words < 1 {
		words = 1
	}
	return &bloomFilter{words: make([]uint64, words), m: uint64(words) * 64}
}

// fnv1a constants and hashes: the 64-bit key hash shared by the Bloom
// filter and the uniqueness table, so a spilled table can re-insert its
// keys into the filter from stored hashes alone, bit-identically to
// inserting the key strings.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1aString(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

func fnv1aBytes(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// bloomStride derives the double-hashing stride from h1 with a splitmix64
// finalizer, forced odd so probes never collapse.
func bloomStride(h1 uint64) uint64 {
	h2 := h1
	h2 ^= h2 >> 30
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 27
	h2 *= 0x94d049bb133111eb
	h2 ^= h2 >> 31
	h2 |= 1
	return h2
}

// bloomHash derives the double-hashing pair from FNV-1a plus the splitmix64
// stride.
func bloomHash(key string) (h1, h2 uint64) {
	h1 = fnv1aString(key)
	return h1, bloomStride(h1)
}

func (b *bloomFilter) insert(key string) {
	b.insertHashed(fnv1aString(key))
}

// insertHashed inserts a key by its FNV-1a hash — the same bits insert
// sets for the key itself, which is what keeps a hash-only spill
// deterministic.
func (b *bloomFilter) insertHashed(h1 uint64) {
	h2 := bloomStride(h1)
	for i := uint64(0); i < bloomHashCount; i++ {
		pos := (h1 + i*h2) % b.m
		b.words[pos/64] |= 1 << (pos % 64)
	}
}

// union ORs other into b; both must be the same size.
func (b *bloomFilter) union(other *bloomFilter) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// estimateDistinct inverts the expected fill ratio: n ≈ −(m/k)·ln(1 − X/m)
// where X is the set-bit count. A saturated filter returns cap.
func (b *bloomFilter) estimateDistinct(cap int64) int64 {
	var set int
	for _, w := range b.words {
		set += bits.OnesCount64(w)
	}
	if uint64(set) >= b.m {
		return cap
	}
	n := -(float64(b.m) / bloomHashCount) * math.Log(1-float64(set)/float64(b.m))
	est := int64(math.Round(n))
	if est < 0 {
		est = 0
	}
	if est > cap {
		est = cap
	}
	return est
}

// ---------------------------------------------------------------------------
// keyTally: bounded, deterministic retention of offending keys.

// keyCount is one retained key's statistics.
type keyCount struct {
	count int64
	first int64 // smallest observed ordinal
}

// keyTally retains the lexicographically smallest cap keys it has seen,
// with exact counts and first ordinals. Retention is deterministic under
// sharding: once full, the largest key is evicted for any smaller
// newcomer, so the maximum retained key never increases and an evicted key
// can never re-enter. A key in the merged smallest-cap selection was
// therefore retained by every shard that saw it (a shard that evicted it
// held cap smaller keys forever after, pushing it out of the final
// selection), so the reported counts and first ordinals are exact.
type keyTally struct {
	cap  int
	keys map[string]keyCount
	max  string // largest retained key, meaningful when len(keys) > 0
}

func newKeyTally(cap int) *keyTally {
	if cap < 0 {
		cap = 0
	}
	return &keyTally{cap: cap, keys: make(map[string]keyCount, cap)}
}

// add folds one observation of key at ordinal.
func (t *keyTally) add(key string, ordinal, count int64) {
	if t.cap == 0 {
		return
	}
	if kc, ok := t.keys[key]; ok {
		kc.count += count
		if ordinal < kc.first {
			kc.first = ordinal
		}
		t.keys[key] = kc
		return
	}
	if len(t.keys) < t.cap {
		t.keys[key] = keyCount{count: count, first: ordinal}
		if len(t.keys) == 1 || key > t.max {
			t.max = key
		}
		return
	}
	if key >= t.max {
		return
	}
	delete(t.keys, t.max)
	t.keys[key] = keyCount{count: count, first: ordinal}
	t.max = ""
	for k := range t.keys {
		if k > t.max {
			t.max = k
		}
	}
}

// merge folds other into t through the same deterministic retention.
func (t *keyTally) merge(other *keyTally) {
	for k, kc := range other.keys {
		t.add(k, kc.first, kc.count)
	}
}

// sortedKeys returns the retained keys in ascending order.
func (t *keyTally) sortedKeys() []string {
	out := make([]string, 0, len(t.keys))
	for k := range t.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// uniqTable: open-addressed key counting for the uniqueness check.

// uniqEntry is one slot; count == 0 marks it empty, so hashes are stored
// verbatim (no reserved hash value that would skew the Bloom spill).
type uniqEntry struct {
	hash  uint64
	count int64
	key   string
}

// uniqTable counts key occurrences with open addressing and linear
// probing. Compared to a map[string]int64 it probes by a precomputed
// 64-bit hash, which lets callers look keys up from a byte slice and only
// materialize the string on first insertion — the hot path of a
// high-duplication dataset allocates nothing.
type uniqTable struct {
	entries []uniqEntry
	n       int // occupied slots (distinct keys)
}

// init sizes the table for about hint distinct keys.
func (t *uniqTable) init(hint int) {
	size := 16
	for size*3/4 < hint && size < 1<<62 {
		size <<= 1
	}
	t.entries = make([]uniqEntry, size)
	t.n = 0
}

// growTo widens the table to hold about hint keys in one rehash, skipping
// the intermediate doublings; a no-op when already large enough.
func (t *uniqTable) growTo(hint int) {
	size := len(t.entries)
	for size*3/4 < hint {
		size <<= 1
	}
	if size > len(t.entries) {
		t.rehash(size)
	}
}

// find probes for (h, key): found means entries[idx] holds it; otherwise
// idx is the empty slot where an insert of the key belongs.
func (t *uniqTable) find(h uint64, key string) (idx int, found bool) {
	mask := len(t.entries) - 1
	i := int(h) & mask
	for {
		e := &t.entries[i]
		if e.count == 0 {
			return i, false
		}
		if e.hash == h && e.key == key {
			return i, true
		}
		i = (i + 1) & mask
	}
}

// findBytes is find for a key held as bytes; the e.key == string(key)
// comparison does not allocate.
func (t *uniqTable) findBytes(h uint64, key []byte) (idx int, found bool) {
	mask := len(t.entries) - 1
	i := int(h) & mask
	for {
		e := &t.entries[i]
		if e.count == 0 {
			return i, false
		}
		if e.hash == h && e.key == string(key) {
			return i, true
		}
		i = (i + 1) & mask
	}
}

// insertAt fills the empty slot find returned and keeps the load factor
// under 3/4.
func (t *uniqTable) insertAt(idx int, h uint64, key string, count int64) {
	t.entries[idx] = uniqEntry{hash: h, count: count, key: key}
	t.n++
	if t.n >= len(t.entries)*3/4 {
		t.rehash(len(t.entries) * 2)
	}
}

func (t *uniqTable) rehash(size int) {
	old := t.entries
	t.entries = make([]uniqEntry, size)
	mask := size - 1
	for i := range old {
		e := &old[i]
		if e.count == 0 {
			continue
		}
		j := int(e.hash) & mask
		for t.entries[j].count != 0 {
			j = (j + 1) & mask
		}
		t.entries[j] = *e
	}
}

// ---------------------------------------------------------------------------
// UniquenessCheck

// DefaultMaxExact is the distinct-key cardinality up to which
// UniquenessCheck stays exact before degrading to a Bloom filter.
const DefaultMaxExact = 1 << 17

// DefaultBloomBits sizes the uniqueness Bloom filter (1 MiB per state).
const DefaultBloomBits = 1 << 23

// UniquenessCheck verifies that no two records share a key — the
// cross-record face of the Consistency characteristic ("free from
// contradiction": two records claiming the same identity contradict each
// other). Each worker tracks an exact key-count set until MaxExact
// distinct keys, then spills to a Bloom filter; the merged finding is
// exact whenever the dataset's distinct-key count fits MaxExact
// (regardless of sharding) and flagged Approximate otherwise, with the
// duplicate count estimated from the unioned filter's fill ratio.
type UniquenessCheck struct {
	// Fields are the key fields; a record's key joins their raw values in
	// field order.
	Fields []string
	// MaxExact bounds the exact mode's distinct-key cardinality (per
	// worker and for the merged result). 0 means DefaultMaxExact; negative
	// disables the Bloom fallback entirely (always exact, unbounded).
	MaxExact int
	// BloomBits sizes the approximate mode's Bloom filter in bits, rounded
	// up to a multiple of 64. 0 means DefaultBloomBits.
	BloomBits int
}

// Name returns "check_uniqueness".
func (UniquenessCheck) Name() string { return "check_uniqueness" }

// Characteristic returns Consistency.
func (UniquenessCheck) Characteristic() iso25012.Characteristic { return iso25012.Consistency }

// NewStates mints n per-worker states sharing the check's configuration.
func (c UniquenessCheck) NewStates(n, maxDetails int) []CheckState {
	maxExact := c.MaxExact
	if maxExact == 0 {
		maxExact = DefaultMaxExact
	} else if maxExact < 0 {
		maxExact = math.MaxInt
	}
	bloomBits := c.BloomBits
	if bloomBits == 0 {
		bloomBits = DefaultBloomBits
	}
	// Start the exact tables small; maybePrime widens them after the first
	// chunk when the observed cardinality says the run will need it, so
	// tiny datasets don't pay and large high-cardinality ones skip the
	// intermediate rehashes.
	hint := maxExact
	if hint > 256 {
		hint = 256
	}
	out := make([]CheckState, n)
	for i := range out {
		st := &uniquenessState{
			check:      c,
			maxExact:   maxExact,
			bloomBits:  bloomBits,
			maxDetails: maxDetails,
		}
		st.table.init(hint)
		out[i] = st
	}
	return out
}

// uniquenessState is one worker's accumulator: an exact key-count table
// until maxExact distinct keys, a Bloom filter afterwards. Keys are hashed
// (FNV-1a 64) out of a reused scratch buffer and the key string is only
// materialized the first time it is inserted — repeat observations of a
// key allocate nothing.
type uniquenessState struct {
	check      UniquenessCheck
	maxExact   int
	bloomBits  int
	maxDetails int
	records    int64
	table      uniqTable
	spilled    bool
	bloom      *bloomFilter
	primed     bool
	cols       []*Column // ObserveBatch scratch
	keyBuf     []byte    // multi-field key scratch
}

// addString folds one observation of a key already held as a string (a
// single-field key is the cell's raw value — stored as-is on first
// insertion, since cell strings are immutable).
func (s *uniquenessState) addString(key string) {
	s.records++
	h := fnv1aString(key)
	if s.spilled {
		s.bloom.insertHashed(h)
		return
	}
	idx, found := s.table.find(h, key)
	if found {
		s.table.entries[idx].count++
		return
	}
	if s.table.n >= s.maxExact {
		s.spill()
		s.bloom.insertHashed(h)
		return
	}
	s.table.insertAt(idx, h, key, 1)
}

// addBytes folds one observation of a key built in the scratch buffer; the
// string is materialized only when the key is new.
func (s *uniquenessState) addBytes(key []byte) {
	s.records++
	h := fnv1aBytes(key)
	if s.spilled {
		s.bloom.insertHashed(h)
		return
	}
	idx, found := s.table.findBytes(h, key)
	if found {
		s.table.entries[idx].count++
		return
	}
	if s.table.n >= s.maxExact {
		s.spill()
		s.bloom.insertHashed(h)
		return
	}
	s.table.insertAt(idx, h, string(key), 1)
}

// spill converts the exact set to Bloom form by stored hash (identical
// bits to inserting the key strings). Insertion order is irrelevant
// (inserts are idempotent), so a spill at any point yields the same bits
// as inserting the stream directly.
func (s *uniquenessState) spill() {
	if s.bloom == nil {
		s.bloom = newBloom(s.bloomBits)
	}
	for i := range s.table.entries {
		if e := &s.table.entries[i]; e.count != 0 {
			s.bloom.insertHashed(e.hash)
		}
	}
	s.table.entries = nil
	s.table.n = 0
	s.spilled = true
}

// maybePrime sizes the table from the first chunk's cardinality: when most
// keys so far are distinct, the run is high-cardinality and the table
// jumps straight to a large capacity instead of doubling its way there.
func (s *uniquenessState) maybePrime() {
	if s.primed || s.spilled {
		return
	}
	s.primed = true
	if int64(s.table.n)*2 >= s.records {
		target := s.maxExact
		if target > 1<<14 {
			target = 1 << 14
		}
		s.table.growTo(target)
	}
}

// appendKeyPart extends the scratch buffer with one multi-field key part.
func (s *uniquenessState) appendKeyPart(i int, part string) {
	if i > 0 {
		s.keyBuf = append(s.keyBuf, keySep...)
	}
	s.keyBuf = append(s.keyBuf, part...)
}

// Observe folds one record's key.
func (s *uniquenessState) Observe(_ int64, r Record) {
	fields := s.check.Fields
	if len(fields) == 1 {
		s.addString(r[fields[0]])
	} else {
		s.keyBuf = s.keyBuf[:0]
		for i, f := range fields {
			s.appendKeyPart(i, r[f])
		}
		s.addBytes(s.keyBuf)
	}
	if !s.primed && s.records >= 256 {
		s.maybePrime()
	}
}

// ObserveBatch folds every row's key, extracted column-wise.
func (s *uniquenessState) ObserveBatch(_ int64, b *ColumnBatch) {
	s.cols = keyCols(s.check.Fields, b, s.cols)
	rows := b.Rows()
	if len(s.cols) == 1 {
		c := s.cols[0]
		for i := 0; i < rows; i++ {
			if c == nil {
				s.addString("")
			} else {
				s.addString(c.Raw[i])
			}
		}
	} else {
		for i := 0; i < rows; i++ {
			s.keyBuf = s.keyBuf[:0]
			for ci, c := range s.cols {
				part := ""
				if c != nil {
					part = c.Raw[i]
				}
				s.appendKeyPart(ci, part)
			}
			s.addBytes(s.keyBuf)
		}
	}
	s.maybePrime()
}

// Merge folds other into s. Two exact states merge their tables (the
// approximate decision is deferred to Finding, where the merged
// cardinality is known); once either side spilled, both degrade to the
// unioned filter.
func (s *uniquenessState) Merge(other CheckState) {
	o := other.(*uniquenessState)
	s.records += o.records
	if !s.spilled && !o.spilled {
		for i := range o.table.entries {
			e := &o.table.entries[i]
			if e.count == 0 {
				continue
			}
			idx, found := s.table.find(e.hash, e.key)
			if found {
				s.table.entries[idx].count += e.count
			} else {
				s.table.insertAt(idx, e.hash, e.key, e.count)
			}
		}
		return
	}
	if !s.spilled {
		s.spill()
	}
	if o.spilled {
		s.bloom.union(o.bloom)
	} else {
		for i := range o.table.entries {
			if e := &o.table.entries[i]; e.count != 0 {
				s.bloom.insertHashed(e.hash)
			}
		}
	}
}

// Finding renders the merged result. The mode is a property of the data
// alone: exact iff the dataset's distinct-key count fits MaxExact. (No
// shard spills unless its local cardinality exceeds MaxExact, and a
// merged exact set over MaxExact converts here, so any sharding lands on
// the same side.)
func (s *uniquenessState) Finding() CrossFinding {
	f := CrossFinding{Check: s.check.Name(), Characteristic: s.check.Characteristic(), Records: s.records}
	if !s.spilled && s.table.n > s.maxExact {
		s.spill()
	}
	if s.spilled {
		distinct := s.bloom.estimateDistinct(s.records)
		f.Approximate = true
		f.Violations = s.records - distinct
		if f.Violations < 0 {
			f.Violations = 0
		}
		f.Details = []string{fmt.Sprintf(
			"~%d distinct keys over %d fields (Bloom estimate, %d bits, exact set capped at %d)",
			distinct, len(s.check.Fields), s.bloom.m, s.maxExact)}
	} else {
		f.Violations = s.records - int64(s.table.n)
		var dup []uniqEntry
		for i := range s.table.entries {
			if e := &s.table.entries[i]; e.count > 1 {
				dup = append(dup, *e)
			}
		}
		sort.Slice(dup, func(i, j int) bool { return dup[i].key < dup[j].key })
		shown := dup
		if len(shown) > s.maxDetails {
			shown = shown[:s.maxDetails]
		}
		for _, e := range shown {
			f.Details = append(f.Details, fmt.Sprintf("key %q appears %d times", displayKey(e.key), e.count))
		}
		if extra := len(dup) - len(shown); extra > 0 {
			f.Details = append(f.Details, fmt.Sprintf("... and %d more duplicated keys", extra))
		}
	}
	f.Score = 1
	if s.records > 0 {
		f.Score = float64(s.records-f.Violations) / float64(s.records)
	}
	f.Passed = f.Violations == 0
	return f
}

// ---------------------------------------------------------------------------
// ReferentialCheck

// ReferentialCheck verifies every record's foreign key resolves in a
// reference key set — the `foreign_key` rule of real DQ catalogs, and the
// cross-dataset face of Consistency. The reference set is built in a
// first pass over the reference dataset (see dqbatch.BuildKeySet) and
// shared read-only by every worker state.
type ReferentialCheck struct {
	// Fields are the foreign-key fields in the validated records.
	Fields []string
	// Ref is the reference key set, keyed exactly as KeyOf builds keys.
	Ref map[string]struct{}
	// RefName labels the reference dataset in diagnostics.
	RefName string
	// Optional passes records whose key fields are all blank.
	Optional bool
}

// Name returns "check_referential".
func (ReferentialCheck) Name() string { return "check_referential" }

// Characteristic returns Consistency.
func (ReferentialCheck) Characteristic() iso25012.Characteristic { return iso25012.Consistency }

// NewStates mints n per-worker states sharing the reference set.
func (c ReferentialCheck) NewStates(n, maxDetails int) []CheckState {
	out := make([]CheckState, n)
	for i := range out {
		out[i] = &referentialState{check: c, missing: newKeyTally(maxDetails)}
	}
	return out
}

// referentialState is one worker's accumulator: exact violation counts
// plus a bounded tally of the smallest missing keys.
type referentialState struct {
	check   ReferentialCheck
	records int64
	blanks  int64
	misses  int64
	missing *keyTally
	cols    []*Column // ObserveBatch scratch
}

// blankKey reports a key whose every part trims to the empty string.
func blankKey(key string) bool {
	for _, part := range strings.Split(key, keySep) {
		if strings.TrimSpace(part) != "" {
			return false
		}
	}
	return true
}

func (s *referentialState) add(ordinal int64, key string) {
	s.records++
	if blankKey(key) {
		s.blanks++
		return
	}
	if _, ok := s.check.Ref[key]; ok {
		return
	}
	s.misses++
	s.missing.add(key, ordinal, 1)
}

// Observe folds one record's foreign key.
func (s *referentialState) Observe(ordinal int64, r Record) {
	s.add(ordinal, KeyOf(s.check.Fields, r))
}

// ObserveBatch folds every row's foreign key, extracted column-wise.
func (s *referentialState) ObserveBatch(base int64, b *ColumnBatch) {
	s.cols = keyCols(s.check.Fields, b, s.cols)
	rows := b.Rows()
	for i := 0; i < rows; i++ {
		s.add(base+int64(i), colKeyAt(s.cols, i))
	}
}

// Merge folds other into s.
func (s *referentialState) Merge(other CheckState) {
	o := other.(*referentialState)
	s.records += o.records
	s.blanks += o.blanks
	s.misses += o.misses
	s.missing.merge(o.missing)
}

// Finding renders the merged result.
func (s *referentialState) Finding() CrossFinding {
	f := CrossFinding{Check: s.check.Name(), Characteristic: s.check.Characteristic(), Records: s.records}
	f.Violations = s.misses
	if !s.check.Optional {
		f.Violations += s.blanks
	}
	ref := s.check.RefName
	if ref == "" {
		ref = "reference"
	}
	if s.blanks > 0 && !s.check.Optional {
		f.Details = append(f.Details, fmt.Sprintf("%d records with blank key", s.blanks))
	}
	keys := s.missing.sortedKeys()
	for _, k := range keys {
		kc := s.missing.keys[k]
		f.Details = append(f.Details, fmt.Sprintf(
			"key %q not in %s (%d records, first record %d)", displayKey(k), ref, kc.count, kc.first))
	}
	if shownMisses := int64(0); len(keys) > 0 {
		for _, k := range keys {
			shownMisses += s.missing.keys[k].count
		}
		if rest := s.misses - shownMisses; rest > 0 {
			f.Details = append(f.Details, fmt.Sprintf("... and %d more dangling records", rest))
		}
	}
	f.Score = 1
	if s.records > 0 {
		f.Score = float64(s.records-f.Violations) / float64(s.records)
	}
	f.Passed = f.Violations == 0
	return f
}

// ---------------------------------------------------------------------------
// TimelinessCheck

// DefaultTimelinessSkew tolerates event times slightly ahead of the
// evaluation clock before they count as future-dated.
const DefaultTimelinessSkew = 5 * time.Minute

// TimelinessCheck measures the dataset's freshness — the Currentness
// characteristic over the whole stream rather than one record: the
// fraction of records inside each freshness window, the min/max
// event-time skew, and the records that are stale (older than MaxAge),
// future-dated beyond MaxSkew, blank or unparsable. The evaluation clock
// is read once per run so every worker — and every worker count — judges
// against the same instant.
type TimelinessCheck struct {
	// Field holds an RFC 3339 event timestamp.
	Field string
	// Windows are the freshness windows to report, e.g. 1h, 24h, 7d.
	Windows []time.Duration
	// MaxAge is the oldest acceptable age; records older violate. 0 means
	// the largest window.
	MaxAge time.Duration
	// MaxSkew tolerates event times this far in the future; beyond it the
	// record violates. 0 means DefaultTimelinessSkew, negative means none.
	MaxSkew time.Duration
	// Now supplies the evaluation clock; time.Now when nil.
	Now func() time.Time
	// Optional excludes blank values instead of counting them as
	// violations.
	Optional bool
}

// Name returns "check_timeliness".
func (TimelinessCheck) Name() string { return "check_timeliness" }

// Characteristic returns Currentness.
func (TimelinessCheck) Characteristic() iso25012.Characteristic { return iso25012.Currentness }

// NewStates reads the clock once and mints n states sharing it.
func (c TimelinessCheck) NewStates(n, _ int) []CheckState {
	now := time.Now
	if c.Now != nil {
		now = c.Now
	}
	asOf := now()
	windows := append([]time.Duration(nil), c.Windows...)
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	maxAge := c.MaxAge
	if maxAge == 0 && len(windows) > 0 {
		maxAge = windows[len(windows)-1]
	}
	maxSkew := c.MaxSkew
	if maxSkew == 0 {
		maxSkew = DefaultTimelinessSkew
	} else if maxSkew < 0 {
		maxSkew = 0
	}
	out := make([]CheckState, n)
	for i := range out {
		out[i] = &timelinessState{
			check:   c,
			asOf:    asOf,
			windows: windows,
			maxAge:  maxAge,
			maxSkew: maxSkew,
			within:  make([]int64, len(windows)),
		}
	}
	return out
}

// timelinessState is one worker's accumulator: integer counts per outcome
// and window, plus the age extrema — no floating-point state, so merges
// are exact in any order.
type timelinessState struct {
	check   TimelinessCheck
	asOf    time.Time
	windows []time.Duration
	maxAge  time.Duration
	maxSkew time.Duration

	records   int64
	blanks    int64
	malformed int64
	stale     int64
	future    int64
	within    []int64
	minAge    time.Duration
	maxSeen   time.Duration
	hasAge    bool

	// parse memo: consecutive equal values skip the time.Parse.
	lastVal  string
	haveLast bool
	lastTS   time.Time
	lastBad  bool
}

func (s *timelinessState) add(raw string) {
	s.records++
	trimmed := strings.TrimSpace(raw)
	if trimmed == "" {
		s.blanks++
		return
	}
	if !s.haveLast || trimmed != s.lastVal {
		ts, err := time.Parse(time.RFC3339, trimmed)
		s.lastVal, s.haveLast = trimmed, true
		s.lastTS, s.lastBad = ts, err != nil
	}
	if s.lastBad {
		s.malformed++
		return
	}
	age := s.asOf.Sub(s.lastTS)
	if !s.hasAge || age < s.minAge {
		s.minAge = age
	}
	if !s.hasAge || age > s.maxSeen {
		s.maxSeen = age
	}
	s.hasAge = true
	switch {
	case age < -s.maxSkew:
		s.future++
	case age > s.maxAge:
		s.stale++
	default:
		for i, w := range s.windows {
			if age <= w {
				s.within[i]++
			}
		}
	}
}

// Observe folds one record's timestamp.
func (s *timelinessState) Observe(_ int64, r Record) {
	s.add(r[s.check.Field])
}

// ObserveBatch folds the timestamp column.
func (s *timelinessState) ObserveBatch(_ int64, b *ColumnBatch) {
	rows := b.Rows()
	col := b.Col(s.check.Field)
	if col == nil {
		s.records += int64(rows)
		s.blanks += int64(rows)
		return
	}
	for i := 0; i < rows; i++ {
		s.add(col.Raw[i])
	}
}

// Merge folds other into s.
func (s *timelinessState) Merge(other CheckState) {
	o := other.(*timelinessState)
	s.records += o.records
	s.blanks += o.blanks
	s.malformed += o.malformed
	s.stale += o.stale
	s.future += o.future
	for i := range s.within {
		s.within[i] += o.within[i]
	}
	if o.hasAge {
		if !s.hasAge || o.minAge < s.minAge {
			s.minAge = o.minAge
		}
		if !s.hasAge || o.maxSeen > s.maxSeen {
			s.maxSeen = o.maxSeen
		}
		s.hasAge = true
	}
}

// Finding renders the merged result. All fractions derive from merged
// integer counts, so any sharding prints the same bytes.
func (s *timelinessState) Finding() CrossFinding {
	f := CrossFinding{Check: s.check.Name(), Characteristic: s.check.Characteristic(), Records: s.records}
	denom := s.records
	if s.check.Optional {
		denom -= s.blanks
	}
	f.Violations = s.malformed + s.stale + s.future
	if !s.check.Optional {
		f.Violations += s.blanks
	}
	for i, w := range s.windows {
		pct := 0.0
		if denom > 0 {
			pct = 100 * float64(s.within[i]) / float64(denom)
		}
		f.Details = append(f.Details, fmt.Sprintf("within %s: %.1f%% (%d/%d)", w, pct, s.within[i], denom))
	}
	if s.hasAge {
		f.Details = append(f.Details, fmt.Sprintf("event-time skew min %s, max %s", s.minAge, s.maxSeen))
	}
	if s.stale > 0 {
		f.Details = append(f.Details, fmt.Sprintf("%d records older than %s", s.stale, s.maxAge))
	}
	if s.future > 0 {
		f.Details = append(f.Details, fmt.Sprintf("%d records future-dated beyond %s", s.future, s.maxSkew))
	}
	if s.malformed > 0 {
		f.Details = append(f.Details, fmt.Sprintf("%d records with unparsable timestamps", s.malformed))
	}
	if s.blanks > 0 && !s.check.Optional {
		f.Details = append(f.Details, fmt.Sprintf("%d records with blank %s", s.blanks, s.check.Field))
	}
	f.Score = 1
	if denom > 0 {
		f.Score = float64(denom-f.Violations) / float64(denom)
	}
	f.Passed = f.Violations == 0
	return f
}
