package dqruntime

import (
	"sync"

	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// Check-level attribution: where the Instrument counters answer "how many
// checks failed?", the observer hook answers "which check, for which
// characteristic, in which context, how slowly, and how is it trending?".
// An Enforcer with an attached CheckObserver reports every check
// execution — outcome, score and latency, tagged with an optional context
// label such as the submitting user's role — and SeriesObserver routes
// those into the windowed obs.Series layer that /metrics and
// /debug/quality expose.

// CheckObservation is one check execution as seen by an observer.
type CheckObservation struct {
	// Check is the check's name (e.g. "check_precision"); Characteristic
	// the ISO/IEC 25012 characteristic it measures.
	Check          string
	Characteristic iso25012.Characteristic
	// Context is the caller-supplied attribution label (user role,
	// workflow stage, dataset name); "" when the caller passed none.
	Context string
	// Score is the measured level in [0, 1]; Passed the outcome.
	Score  float64
	Passed bool
	// Seconds is the check's execution latency.
	Seconds float64
}

// CheckObserver receives one call per executed check. Implementations
// must be safe for concurrent use: a served application validates from
// many request goroutines.
type CheckObserver interface {
	ObserveCheck(CheckObservation)
}

// SeriesObserver is the stock CheckObserver: it feeds per-characteristic
// score series (labels characteristic + context) in a SeriesSet, and,
// when given a registry, a dq_check_seconds latency histogram per check.
// Series and histogram handles are cached after first resolution, so the
// steady-state cost per check is one map read under RLock plus the
// series/histogram update.
type SeriesObserver struct {
	scores *obs.SeriesSet
	reg    *obs.Registry

	mu     sync.RWMutex
	series map[string]*obs.Series    // characteristic + "\x00" + context
	lat    map[string]*obs.Histogram // check name
}

// checkBuckets bound dq_check_seconds: single checks run in the
// micro-to-millisecond range.
var checkBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1,
}

// NewSeriesObserver builds an observer feeding scores; reg may be nil to
// skip latency histograms.
func NewSeriesObserver(scores *obs.SeriesSet, reg *obs.Registry) *SeriesObserver {
	return &SeriesObserver{
		scores: scores,
		reg:    reg,
		series: make(map[string]*obs.Series),
		lat:    make(map[string]*obs.Histogram),
	}
}

// ObserveCheck implements CheckObserver.
func (o *SeriesObserver) ObserveCheck(co CheckObservation) {
	key := string(co.Characteristic) + "\x00" + co.Context
	o.mu.RLock()
	s := o.series[key]
	h := o.lat[co.Check]
	o.mu.RUnlock()
	if s == nil || (h == nil && o.reg != nil) {
		o.mu.Lock()
		if s = o.series[key]; s == nil {
			s = o.scores.Series(obs.Labels{
				"characteristic": string(co.Characteristic),
				"context":        co.Context,
			})
			o.series[key] = s
		}
		if h = o.lat[co.Check]; h == nil && o.reg != nil {
			h = o.reg.Histogram("dq_check_seconds",
				"DQ check execution latency in seconds, by check",
				checkBuckets, obs.Labels{"check": co.Check})
			o.lat[co.Check] = h
		}
		o.mu.Unlock()
	}
	s.ObserveOutcome(co.Score, !co.Passed)
	if h != nil {
		h.Observe(co.Seconds)
	}
}

// Scores exposes the underlying score series set (for export and debug
// endpoints).
func (o *SeriesObserver) Scores() *obs.SeriesSet { return o.scores }
