module github.com/modeldriven/dqwebre

go 1.22
