#!/bin/sh
# Validation-service smoke test: boot `dqwebre serve`, submit a record
# stream over the job API, poll the job to completion, and assert the
# report and the dqserve job metrics come out live. CI runs this after the
# unit suites; it is the end-to-end proof that the serve wiring (flag
# parsing → staging → worker pool → engine → report persistence →
# exposition) holds together outside the Go test harness.
# Usage: scripts/serve_smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."

port="${1:-18081}"
base="http://127.0.0.1:$port"
workdir="$(mktemp -d)"
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/dqwebre" ./cmd/dqwebre
"$workdir/dqwebre" demo >"$workdir/easychair.xml"

# Records: 40 good reviews, 2 precision failures, a duplicate email for
# the uniqueness check, and one malformed line.
i=0
while [ "$i" -lt 40 ]; do
	printf '{"first_name":"R%s","last_name":"V","email_address":"r%s@conf.org","overall_evaluation":2,"reviewer_confidence":3}\n' "$i" "$i"
	i=$((i + 1))
done >"$workdir/records.ndjson"
{
	printf '{"first_name":"A","last_name":"B","email_address":"r0@conf.org","overall_evaluation":9,"reviewer_confidence":3}\n'
	printf '{"first_name":"C","last_name":"D","email_address":"c@conf.org","overall_evaluation":-7,"reviewer_confidence":3}\n'
	printf 'not json\n'
} >>"$workdir/records.ndjson"

"$workdir/dqwebre" serve -addr "127.0.0.1:$port" -model "$workdir/easychair.xml" \
	-staging "$workdir/staging" >"$workdir/server.log" 2>&1 &
server_pid=$!

i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "FAIL: server did not become healthy" >&2
		cat "$workdir/server.log" >&2
		exit 1
	fi
	sleep 0.2
done

# Submit the stream with the uniqueness cross-record check riding along.
curl -fsS -X POST --data-binary "@$workdir/records.ndjson" \
	"$base/v1/jobs?unique=email_address" >"$workdir/submit.json"
id="$(sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p' "$workdir/submit.json")"
if [ -z "$id" ]; then
	echo "FAIL: submission did not return a job id:" >&2
	cat "$workdir/submit.json" >&2
	exit 1
fi

# Poll the job to a terminal state.
i=0
while :; do
	curl -fsS "$base/v1/jobs/$id" >"$workdir/status.json"
	state="$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' "$workdir/status.json")"
	case "$state" in
	done) break ;;
	failed | cancelled)
		echo "FAIL: job ended $state:" >&2
		cat "$workdir/status.json" >&2
		exit 1
		;;
	esac
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "FAIL: job stuck in state '$state'" >&2
		exit 1
	fi
	sleep 0.1
done

fail=0
assert_contains() {
	# assert_contains <file> <pattern> <label>
	if grep -q "$2" "$1"; then
		echo "ok: $3"
	else
		echo "FAIL: $3 — pattern '$2' not found" >&2
		fail=1
	fi
}

curl -fsS "$base/v1/jobs/$id/report" >"$workdir/report.json"
assert_contains "$workdir/report.json" '"records": 42' "all decodable records validated"
assert_contains "$workdir/report.json" '"failed": 2' "precision failures counted"
assert_contains "$workdir/report.json" '"malformed": 1' "malformed line counted"
assert_contains "$workdir/report.json" '"check": "check_uniqueness"' "uniqueness finding in report"
assert_contains "$workdir/report.json" '"line": 43' "decode error carries its line"

curl -fsS "$base/v1/jobs/$id/report?format=text" >"$workdir/report.txt"
assert_contains "$workdir/report.txt" 'records' "text rendering works"

curl -fsS "$base/metrics" >"$workdir/metrics.txt"
assert_contains "$workdir/metrics.txt" '^dqserve_jobs_total{state="submitted"} 1' "submitted counter"
assert_contains "$workdir/metrics.txt" '^dqserve_jobs_total{state="completed"} 1' "completed counter"
assert_contains "$workdir/metrics.txt" '^dqserve_queue_depth 0' "queue drained"
assert_contains "$workdir/metrics.txt" '^# TYPE dq_score gauge' "quality windows exported"

curl -fsS "$base/debug/quality" >"$workdir/quality.json"
assert_contains "$workdir/quality.json" '"characteristic": "Precision"' "precision series in quality report"

# The job-mode load generator consumes the same API.
"$workdir/dqwebre" load -url "$base" -jobs 3 -job-body "$workdir/records.ndjson" \
	-c 2 >"$workdir/load.txt"
assert_contains "$workdir/load.txt" '3 submitted (3 done' "load -jobs drives the job API"

# Graceful drain: SIGTERM must land a clean shutdown.
kill "$server_pid"
i=0
while kill -0 "$server_pid" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "FAIL: server did not exit on SIGTERM" >&2
		exit 1
	fi
	sleep 0.2
done
server_pid=""
assert_contains "$workdir/server.log" 'shutdown complete' "graceful drain completed"

if [ "$fail" -ne 0 ]; then
	echo "serve smoke FAILED" >&2
	exit 1
fi
echo "serve smoke passed"
