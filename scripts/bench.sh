#!/bin/sh
# Batch-engine benchmark harness: runs BenchmarkBatchSequential and
# BenchmarkBatchParallel{2,4,8} and distills their custom metrics
# (records/sec, stride-sampled p50/p99 per-record latency) into
# BENCH_batch.json, so every CI run leaves a machine-readable data point
# on the throughput trajectory. Usage: scripts/bench.sh [output.json]
# BENCHTIME overrides the go test -benchtime (default 1s).
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_batch.json}"
benchtime="${BENCHTIME:-1s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkBatch(Sequential|Parallel[0-9]+)$' \
	-benchtime "$benchtime" -count 1 ./internal/dqbatch/ | tee "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkBatch/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
	line = "    {\"name\": \"" name "\", \"iterations\": " $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		gsub(/[^A-Za-z0-9_]/, "_", unit)
		line = line ", \"" unit "\": " $i
		if (unit == "records_per_sec") rps[name] = $i
	}
	lines[n++] = line "}"
}
END {
	print "{"
	print "  \"date\": \"" date "\","
	print "  \"cpu\": \"" cpu "\","
	print "  \"benchtime\": \"'"$benchtime"'\","
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "")
	print "  ],"
	seq = rps["BenchmarkBatchSequential"]
	par = rps["BenchmarkBatchParallel8"]
	speedup = (seq > 0) ? par / seq : 0
	printf "  \"speedup_parallel8_vs_sequential\": %.2f\n", speedup
	print "}"
}' "$raw" > "$out"

echo "wrote $out"
