#!/bin/sh
# Benchmark harness. Three suites, one JSON data point each per CI run:
#   - batch engine (BenchmarkBatchSequential, BenchmarkBatchParallel{2,4,8},
#     BenchmarkBatchVectorized, the full-engine BenchmarkBatchVectorized8,
#     the cross-record BenchmarkBatchUniqueness{1,8} exact/Bloom pairs, the
#     zero-copy ingest pairs BenchmarkDecode{Bufio,Mmap} and
#     BenchmarkBatchFile{Bufio,Mmap}, and the uniqueness key-materialization
#     pair BenchmarkBatchUniquenessKeys{Baseline,Hashed})
#     → BENCH_batch.json: records/sec, allocs, stride-sampled p50/p99
#     latency, plus the vectorized-vs-row, parallel-vs-sequential,
#     uniqueness-vs-parallel, mmap-vs-bufio and key-allocs-reduction
#     ratios.
# Each run is also archived under artifacts/bench/<timestamp>_{batch,ocl,obs}.json
# so scripts/bench_compare.sh can flag throughput regressions against the
# previous entry.
#   - OCL evaluation (BenchmarkEvalInterpreted vs BenchmarkEvalCompiled per
#     expression shape, plus the end-to-end BenchmarkBatchCompiled)
#     → BENCH_ocl.json: ns/op, allocs/op and compiled-vs-interpreted
#     speedup per shape.
#   - observability overhead (BenchmarkBatchParallel8 vs
#     BenchmarkBatchAttributed8, run back to back in one process)
#     → BENCH_obs.json: throughput of the quality-attributed batch path
#     relative to the uninstrumented one, as an overhead percentage.
# Usage: scripts/bench.sh [batch-output.json] [ocl-output.json] [obs-output.json]
# BENCHTIME overrides the go test -benchtime (default 1s).
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_batch.json}"
oclout="${2:-BENCH_ocl.json}"
obsout="${3:-BENCH_obs.json}"
benchtime="${BENCHTIME:-1s}"
raw="$(mktemp)"
oclraw="$(mktemp)"
obsraw="$(mktemp)"
trap 'rm -f "$raw" "$oclraw" "$obsraw"' EXIT

go test -run '^$' -bench 'Benchmark(Batch(Sequential|Parallel[0-9]+|Vectorized[0-9]*|Uniqueness(Bloom)?[0-9]+|File(Bufio|Mmap)|UniquenessKeys(Baseline|Hashed))|Decode(Bufio|Mmap))$' \
	-benchmem -benchtime "$benchtime" -count 1 ./internal/dqbatch/ | tee "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark(Batch|Decode)/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
	line = "    {\"name\": \"" name "\", \"iterations\": " $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		gsub(/[^A-Za-z0-9_]/, "_", unit)
		line = line ", \"" unit "\": " $i
		if (unit == "records_per_sec") rps[name] = $i
		if (unit == "allocs_per_op") allocs[name] = $i
	}
	lines[n++] = line "}"
}
END {
	print "{"
	print "  \"date\": \"" date "\","
	print "  \"cpu\": \"" cpu "\","
	print "  \"benchtime\": \"'"$benchtime"'\","
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "")
	print "  ],"
	seq = rps["BenchmarkBatchSequential"]
	par = rps["BenchmarkBatchParallel8"]
	vec = rps["BenchmarkBatchVectorized"]
	vec8 = rps["BenchmarkBatchVectorized8"]
	u8 = rps["BenchmarkBatchUniqueness8"]
	ub8 = rps["BenchmarkBatchUniquenessBloom8"]
	printf "  \"speedup_parallel8_vs_sequential\": %.2f,\n", (seq > 0) ? par / seq : 0
	printf "  \"speedup_vectorized_vs_sequential\": %.2f,\n", (seq > 0) ? vec / seq : 0
	printf "  \"speedup_vectorized8_vs_sequential\": %.2f,\n", (seq > 0) ? vec8 / seq : 0
	printf "  \"uniqueness8_records_per_sec\": %.0f,\n", u8
	printf "  \"uniqueness_bloom8_records_per_sec\": %.0f,\n", ub8
	printf "  \"uniqueness8_vs_parallel8\": %.2f,\n", (par > 0) ? u8 / par : 0
	db = rps["BenchmarkDecodeBufio"]
	dm = rps["BenchmarkDecodeMmap"]
	fb = rps["BenchmarkBatchFileBufio"]
	fm = rps["BenchmarkBatchFileMmap"]
	ab = allocs["BenchmarkBatchUniquenessKeysBaseline"]
	ah = allocs["BenchmarkBatchUniquenessKeysHashed"]
	printf "  \"file_mmap_records_per_sec\": %.0f,\n", fm
	printf "  \"mmap_vs_bufio\": %.2f,\n", (db > 0) ? dm / db : 0
	printf "  \"file_mmap_vs_bufio\": %.2f,\n", (fb > 0) ? fm / fb : 0
	printf "  \"uniqueness_key_allocs_reduction\": %.1f\n", (ah > 0) ? ab / ah : 0
	print "}"
}' "$raw" > "$out"

echo "wrote $out"

go test -run '^$' -bench 'BenchmarkEval(Interpreted|Compiled)$' -benchmem \
	-benchtime "$benchtime" -count 1 ./internal/ocl/ | tee "$oclraw"
go test -run '^$' -bench 'BenchmarkBatchCompiled(Rows)?$' -benchmem \
	-benchtime "$benchtime" -count 1 ./internal/dqbatch/ | tee -a "$oclraw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark(Eval|BatchCompiled)/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
	line = "    {\"name\": \"" name "\", \"iterations\": " $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		if (unit == "ns/op") ns[name] = $i
		gsub(/\//, "_per_", unit)
		gsub(/[^A-Za-z0-9_]/, "_", unit)
		line = line ", \"" unit "\": " $i
	}
	lines[n++] = line "}"
}
END {
	print "{"
	print "  \"date\": \"" date "\","
	print "  \"cpu\": \"" cpu "\","
	print "  \"benchtime\": \"'"$benchtime"'\","
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "")
	print "  ],"
	print "  \"speedups\": {"
	shapes = "Simple ForAll AllInstances"
	m = split(shapes, shape, " ")
	for (i = 1; i <= m; i++) {
		interp = ns["BenchmarkEvalInterpreted/" shape[i]]
		comp = ns["BenchmarkEvalCompiled/" shape[i]]
		speedup = (comp > 0) ? interp / comp : 0
		printf "    \"compiled_vs_interpreted_%s\": %.2f%s\n", shape[i], speedup, (i < m ? "," : "")
	}
	print "  }"
	print "}"
}' "$oclraw" > "$oclout"

echo "wrote $oclout"

# Instrumented vs uninstrumented: both in one go test process so they share
# the same build, CPU state and dataset; the delta is attribution alone.
# -count 3 with best-of taken below, because on shared machines scheduler
# noise between two 8-worker runs dwarfs the microseconds of attribution.
go test -run '^$' -bench 'BenchmarkBatch(Parallel8|Attributed8)$' \
	-benchtime "$benchtime" -count 3 ./internal/dqbatch/ | tee "$obsraw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkBatch/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
	line = "    {\"name\": \"" name "\", \"iterations\": " $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		gsub(/[^A-Za-z0-9_]/, "_", unit)
		line = line ", \"" unit "\": " $i
		if (unit == "records_per_sec" && $i > rps[name]) rps[name] = $i
	}
	lines[n++] = line "}"
}
END {
	print "{"
	print "  \"date\": \"" date "\","
	print "  \"cpu\": \"" cpu "\","
	print "  \"benchtime\": \"'"$benchtime"'\","
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "")
	print "  ],"
	plain = rps["BenchmarkBatchParallel8"]
	attr = rps["BenchmarkBatchAttributed8"]
	overhead = (plain > 0) ? (1 - attr / plain) * 100 : 0
	printf "  \"best_records_per_sec\": {\"parallel8\": %.0f, \"attributed8\": %.0f},\n", plain, attr
	printf "  \"attribution_overhead_percent\": %.2f\n", overhead
	print "}"
}' "$obsraw" > "$obsout"

echo "wrote $obsout"

# Archive this run so the next one has a baseline: bench_compare.sh reads
# the newest non-identical entry and warns on records/sec regressions.
hist="${BENCH_HISTORY:-artifacts/bench}"
mkdir -p "$hist"
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
cp "$out" "$hist/${stamp}_batch.json"
cp "$oclout" "$hist/${stamp}_ocl.json"
cp "$obsout" "$hist/${stamp}_obs.json"
echo "archived under $hist/${stamp}_{batch,ocl,obs}.json"
