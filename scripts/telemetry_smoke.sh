#!/bin/sh
# Telemetry smoke test: boot the easychair server, drive one full review
# flow through the HTTP surface, then assert the quality telemetry is live —
# the dq_score windowed family on /metrics and per-characteristic trends on
# /debug/quality. CI runs this after the unit suites; it is the end-to-end
# proof that check-level attribution survives the whole wiring (enforcer →
# observer → series → exposition), not just the package tests.
# Usage: scripts/telemetry_smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."

port="${1:-18080}"
base="http://127.0.0.1:$port"
workdir="$(mktemp -d)"
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/easychair" ./cmd/easychair
"$workdir/easychair" -addr "127.0.0.1:$port" >"$workdir/server.log" 2>&1 &
server_pid=$!

# Wait for the server to answer its liveness probe.
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "FAIL: server did not become healthy" >&2
		cat "$workdir/server.log" >&2
		exit 1
	fi
	sleep 0.2
done

# Full review flow: author submits a paper, the chair assigns a reviewer,
# the reviewer (role pc → the quality context label) submits a valid review
# and an invalid one (evaluation outside [-3,3]).
curl -fsS -c "$workdir/author.txt" -d 'user=ada&role=author&level=0' "$base/login" >/dev/null
curl -fsS -b "$workdir/author.txt" -d 'title=Smoke Paper&authors=A' "$base/papers" >/dev/null
curl -fsS -c "$workdir/chair.txt" -d 'user=chair&role=chair&level=3' "$base/login" >/dev/null
curl -fsS -b "$workdir/chair.txt" -d 'reviewer=grace' "$base/papers/1/assign" >/dev/null
curl -fsS -c "$workdir/pc.txt" -d 'user=grace&role=pc&level=2' "$base/login" >/dev/null
curl -fsS -b "$workdir/pc.txt" \
	-d 'first_name=Grace&last_name=Hopper&email_address=g@h.io&overall_evaluation=2&reviewer_confidence=4' \
	"$base/papers/1/reviews" >/dev/null
# The invalid review is rejected with 422 — that failure must show up in
# the failure telemetry below.
status="$(curl -s -o /dev/null -w '%{http_code}' -b "$workdir/pc.txt" \
	-d 'first_name=Grace&last_name=Hopper&email_address=g@h.io&overall_evaluation=9&reviewer_confidence=4' \
	"$base/papers/1/reviews")"
if [ "$status" != "422" ]; then
	echo "FAIL: invalid review returned $status, want 422" >&2
	exit 1
fi

fail=0
assert_contains() {
	# assert_contains <file> <pattern> <label>
	if grep -q "$2" "$1"; then
		echo "ok: $3"
	else
		echo "FAIL: $3 — pattern '$2' not found" >&2
		fail=1
	fi
}

curl -fsS "$base/metrics" >"$workdir/metrics.txt"
assert_contains "$workdir/metrics.txt" '^# TYPE dq_score gauge' "dq_score family declared"
assert_contains "$workdir/metrics.txt" '^dq_score{characteristic="Completeness",context="pc",window="current"} 1' "completeness window scored"
assert_contains "$workdir/metrics.txt" '^dq_score{characteristic="Precision",context="pc",window="current"}' "precision window present"
assert_contains "$workdir/metrics.txt" '^dq_check_failures{characteristic="Precision",context="pc",window="current"} 1' "precision failure attributed"
assert_contains "$workdir/metrics.txt" '^dq_score_trend{characteristic="Precision",context="pc",stat="ewma"}' "trend exported"
assert_contains "$workdir/metrics.txt" '^dq_check_seconds_count{check="check_precision"} 4' "check latency histogram"

curl -fsS "$base/debug/quality" >"$workdir/quality.json"
assert_contains "$workdir/quality.json" '"name": "dq_score"' "quality report named"
assert_contains "$workdir/quality.json" '"characteristic": "Precision"' "precision series in report"
assert_contains "$workdir/quality.json" '"context": "pc"' "context label in report"
assert_contains "$workdir/quality.json" '"ewma":' "trend in report"
assert_contains "$workdir/quality.json" '"failures": 1' "failure count in report"

# The watch subcommand consumes the same endpoint.
go run ./cmd/dqwebre watch -url "$base" -n 1 -plain >"$workdir/watch.txt"
assert_contains "$workdir/watch.txt" 'Precision' "watch renders precision row"
assert_contains "$workdir/watch.txt" 'CHARACTERISTIC' "watch renders table header"

if [ "$fail" -ne 0 ]; then
	echo "telemetry smoke FAILED" >&2
	exit 1
fi
echo "telemetry smoke passed"
