#!/bin/sh
# Compare the current batch benchmark JSON against the previous entry in
# the bench history (artifacts/bench, written by scripts/bench.sh) and
# warn when any benchmark's records/sec dropped more than 10%.
#
# Usage: scripts/bench_compare.sh [current-batch.json] [history-dir]
#
# Advisory only: always exits 0. In CI the ::warning:: lines surface as
# annotations; locally they read fine as plain text. Sets REGRESSIONS
# in $GITHUB_OUTPUT when running under Actions so later steps can react.
set -eu

cd "$(dirname "$0")/.."

cur="${1:-BENCH_batch.json}"
hist="${2:-artifacts/bench}"

if [ ! -f "$cur" ]; then
	echo "bench_compare: $cur not found (run scripts/bench.sh first)"
	exit 0
fi
if [ ! -d "$hist" ]; then
	echo "bench_compare: no history at $hist yet — nothing to compare"
	exit 0
fi

# The newest archived entry is usually the current run itself (bench.sh
# archives right after writing), so take the newest entry whose bytes
# differ from the current file.
prev=""
for f in $(ls -r "$hist"/*_batch.json 2>/dev/null); do
	if ! cmp -s "$f" "$cur"; then
		prev="$f"
		break
	fi
done
if [ -z "$prev" ]; then
	echo "bench_compare: no previous entry in $hist — nothing to compare"
	exit 0
fi

echo "bench_compare: $cur vs $prev"
regressions="$(awk -v curfile="$cur" -v prevfile="$prev" '
function scan(file, map,   line, name, v) {
	while ((getline line < file) > 0) {
		if (match(line, /"name": "[A-Za-z0-9_]+"/)) {
			name = substr(line, RSTART + 9, RLENGTH - 10)
			if (match(line, /"records_per_sec": [0-9.]+/))
				map[name] = substr(line, RSTART + 19, RLENGTH - 19) + 0
		}
	}
	close(file)
}
BEGIN {
	scan(curfile, cur)
	scan(prevfile, prev)
	bad = 0
	for (name in prev) {
		if (!(name in cur) || prev[name] <= 0) continue
		if (cur[name] < prev[name] * 0.9) {
			printf "::warning::%s records/sec regressed %.1f%% (%.0f -> %.0f)\n",
				name, (1 - cur[name] / prev[name]) * 100, prev[name], cur[name]
			bad++
		}
	}
	if (bad == 0)
		print "bench_compare: no records/sec regression beyond 10%"
	exit 0
}' < /dev/null)"

echo "$regressions"
count="$(printf '%s\n' "$regressions" | grep -c '^::warning::' || true)"
if [ -n "${GITHUB_OUTPUT:-}" ]; then
	echo "regressions=$count" >> "$GITHUB_OUTPUT"
fi
exit 0
