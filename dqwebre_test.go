package dqwebre_test

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre"
)

// TestFacadePipeline exercises the whole public API surface: model →
// validate → transform → enforce → serialize → deserialize.
func TestFacadePipeline(t *testing.T) {
	rm := dqwebre.NewRequirementsModel("facade")
	user := rm.WebUser("u")
	proc := rm.WebProcess("do things", user)
	content := rm.Content("things", "name", "amount_level")
	ic := rm.InformationCase("manage things", proc, content)
	req := rm.DQRequirement("things are complete", dqwebre.Completeness, ic)
	rm.Specify(req, 1, "all thing fields present")
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}

	rep := rm.Validate()
	if !rep.OK() {
		t.Fatalf("validation failed: %v", rep.Errors())
	}

	dqsr, trace, err := dqwebre.TransformToDQSR(rm)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Links) == 0 {
		t.Fatal("no trace links")
	}

	enf, err := dqwebre.BuildEnforcer(dqsr)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.CheckInput(dqwebre.Record{"name": "x", "amount_level": "3"}).Passed() {
		t.Fatal("complete record rejected")
	}
	if enf.CheckInput(dqwebre.Record{}).Passed() {
		t.Fatal("empty record accepted")
	}

	data, err := dqwebre.MarshalXMI(rm.Model)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dqwebre.UnmarshalXMI(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rm.Len() {
		t.Fatalf("round trip: %d vs %d elements", back.Len(), rm.Len())
	}
}

func TestFacadeEnrich(t *testing.T) {
	rm := dqwebre.NewRequirementsModel("enrich")
	u := rm.WebUser("u")
	rm.WebProcess("p1", u)
	rm.WebProcess("p2", u)
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	added, err := dqwebre.EnrichWithDQ(rm, []dqwebre.Characteristic{dqwebre.Accuracy})
	if err != nil || added != 2 {
		t.Fatalf("added=%d err=%v", added, err)
	}
	if !rm.Validate().OK() {
		t.Fatal("enriched model invalid")
	}
}

func TestFacadeMetamodelAndProfile(t *testing.T) {
	if dqwebre.Metamodel().Name() != "DQ_WebRE" {
		t.Fatal("metamodel name")
	}
	p := dqwebre.Profile()
	if p.Name() != "DQ_WebRE" || len(p.Stereotypes()) != 7 {
		t.Fatal("profile shape")
	}
}

// TestFacadeCharacteristics pins the re-exported constant set.
func TestFacadeCharacteristics(t *testing.T) {
	all := []dqwebre.Characteristic{
		dqwebre.Accuracy, dqwebre.Completeness, dqwebre.Consistency,
		dqwebre.Credibility, dqwebre.Currentness, dqwebre.Accessibility,
		dqwebre.Compliance, dqwebre.Confidentiality, dqwebre.Efficiency,
		dqwebre.Precision, dqwebre.Traceability, dqwebre.Understandability,
		dqwebre.Availability, dqwebre.Portability, dqwebre.Recoverability,
	}
	seen := map[dqwebre.Characteristic]bool{}
	for _, c := range all {
		if string(c) == "" || seen[c] {
			t.Fatalf("bad characteristic %q", c)
		}
		seen[c] = true
	}
	if len(seen) != 15 {
		t.Fatalf("constants = %d", len(seen))
	}
}

func TestFacadeUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := dqwebre.UnmarshalXMI([]byte("<not-xmi")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := dqwebre.UnmarshalXMI([]byte(strings.Repeat("x", 10))); err == nil {
		t.Fatal("garbage accepted")
	}
}
